// Package lease implements ArkFS's directory lease protocol (paper §III-B).
//
// A single lightweight lease manager issues per-directory leases
// first-come-first-served. The holder — the *directory leader* — is the only
// client allowed to modify that directory's metadata and to manage data
// read/write leases for its children. Other clients are redirected to the
// leader and forward their operations to it.
//
// The manager additionally:
//   - supports extension, remembering the previous leader so that an unbroken
//     re-acquire can skip reloading the metadata table;
//   - gates recovery: when a lease expires without a clean release, the next
//     acquirer is told to run journal recovery, and everyone else waits;
//   - quiesces for one lease period after its own restart so that no two
//     clients can ever hold the same directory simultaneously.
package lease

import (
	"encoding/gob"
	"time"

	"arkfs/internal/rpc"
	"arkfs/internal/types"
)

// DefaultPeriod is the paper's default lease duration (5 seconds).
const DefaultPeriod = 5 * time.Second

// AcquireReq asks for (or extends) the lease of Dir on behalf of Client.
type AcquireReq struct {
	Dir    types.Ino
	Client rpc.Addr
}

// AcquireResp is the manager's answer to an AcquireReq.
type AcquireResp struct {
	// Granted: the caller is now the directory leader until Expiry.
	Granted bool
	// LeaseID is a fencing token, unique per grant chain; extensions keep it.
	LeaseID uint64
	// Expiry is the absolute environment time at which the lease lapses.
	Expiry time.Duration
	// SameLeader: the caller held this directory last and nobody else has
	// touched it since, so its in-memory metatable is still valid.
	SameLeader bool
	// NeedRecovery: the previous leader crashed (lease lapsed without a
	// clean release); the caller must run journal recovery before serving.
	NeedRecovery bool
	// Redirect: the lease is held by Leader; forward operations there.
	Redirect bool
	Leader   rpc.Addr
	// Wait: the directory is under recovery or the manager is quiescing
	// after a restart; retry after RetryAfter.
	Wait       bool
	RetryAfter time.Duration
	// Quiesce: the Wait is the manager's own post-restart quiesce window,
	// not contention on this directory. Clients should not charge it
	// against their per-directory retry budget — RetryAfter is a firm
	// "come back then" hint, and every directory is affected equally.
	Quiesce bool
	// StaleRing: the caller's ring epoch is behind (or it asked a shard that
	// no longer owns Dir); Ring is the shard's current membership. The client
	// must update its router and retry at the owner — an EAGAIN-style
	// redirect, never a wrong-shard grant.
	StaleRing bool
	Ring      Ring
}

// ReleaseReq gives up a lease. Clean indicates all metadata was flushed.
type ReleaseReq struct {
	Dir     types.Ino
	LeaseID uint64
	Client  rpc.Addr
	Clean   bool
}

// ReleaseResp acknowledges a ReleaseReq.
type ReleaseResp struct {
	OK bool
	// StaleRing: Dir moved to another shard (see AcquireResp.StaleRing).
	StaleRing bool
	Ring      Ring
}

// RecoveryDoneReq reports that the caller finished journal recovery for Dir;
// the manager renews the caller's lease and unblocks waiters.
type RecoveryDoneReq struct {
	Dir     types.Ino
	LeaseID uint64
	Client  rpc.Addr
}

// RecoveryDoneResp carries the renewed lease.
type RecoveryDoneResp struct {
	OK      bool
	Expiry  time.Duration
	LeaseID uint64
	// StaleRing: Dir moved to another shard (see AcquireResp.StaleRing).
	StaleRing bool
	Ring      Ring
}

// DirGrant is one directory's live lease chain on the wire: everything a
// gaining shard needs to continue granting without a grace-period stall —
// holder, fencing token, expiry, and the recovery flags.
type DirGrant struct {
	Dir        types.Ino
	Holder     rpc.Addr
	LeaseID    uint64
	Expiry     time.Duration
	Clean      bool
	PrevHolder rpc.Addr
	Recovering bool
	RecoverID  uint64
}

// HandoffReq transfers grant state from a losing shard to the gaining shard
// during a resharding: every DirGrant routes to the receiver under the ring
// at Epoch. Directories whose transfer fails are the only ones that pay the
// grace-period stall at the new owner.
type HandoffReq struct {
	Epoch  Epoch
	From   rpc.Addr
	Grants []DirGrant
}

// HandoffResp acknowledges a HandoffReq.
type HandoffResp struct {
	OK       bool
	Accepted int
}

func init() {
	// Registered for the TCP transport used by the live tools.
	gob.Register(AcquireReq{})
	gob.Register(AcquireResp{})
	gob.Register(ReleaseReq{})
	gob.Register(ReleaseResp{})
	gob.Register(RecoveryDoneReq{})
	gob.Register(RecoveryDoneResp{})
	gob.Register(HandoffReq{})
	gob.Register(HandoffResp{})
	gob.Register(Ring{})
}
