package lease

import (
	"context"
	"testing"
	"time"

	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

func TestAcquireExtendRelease(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		m := NewManager(net, Options{Period: time.Second})
		defer m.Close()
		c1 := &Client{Net: net, Mgr: m.Addr(), Self: "c1"}
		dir := types.RootIno

		resp, err := c1.Acquire(context.Background(), dir)
		if err != nil || !resp.Granted || resp.SameLeader || resp.NeedRecovery {
			t.Fatalf("first acquire: %+v, %v", resp, err)
		}
		id := resp.LeaseID

		// Extension keeps the lease id and reports SameLeader.
		env.Sleep(500 * time.Millisecond)
		ext, err := c1.Acquire(context.Background(), dir)
		if err != nil || !ext.Granted || !ext.SameLeader || ext.LeaseID != id {
			t.Fatalf("extension: %+v, %v", ext, err)
		}
		if ext.Expiry <= resp.Expiry {
			t.Fatalf("extension did not push expiry: %v <= %v", ext.Expiry, resp.Expiry)
		}

		// Clean release; re-acquire by the same client keeps the metatable.
		if err := c1.Release(context.Background(), dir, id, true); err != nil {
			t.Fatal(err)
		}
		again, err := c1.Acquire(context.Background(), dir)
		if err != nil || !again.Granted || !again.SameLeader {
			t.Fatalf("re-acquire after clean release: %+v, %v", again, err)
		}
		if again.LeaseID == id {
			t.Fatal("new grant chain must change the lease id")
		}
	})
}

func TestFCFSRedirect(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		m := NewManager(net, Options{Period: time.Second})
		defer m.Close()
		c1 := &Client{Net: net, Mgr: m.Addr(), Self: "c1"}
		c2 := &Client{Net: net, Mgr: m.Addr(), Self: "c2"}
		dir := types.RootIno

		if r, _ := c1.Acquire(context.Background(), dir); !r.Granted {
			t.Fatal("c1 grant failed")
		}
		r2, err := c2.Acquire(context.Background(), dir)
		if err != nil || r2.Granted || !r2.Redirect || r2.Leader != "c1" {
			t.Fatalf("c2 should be redirected to c1: %+v, %v", r2, err)
		}
		if m.Stats().Redirects.Load() != 1 {
			t.Fatalf("redirects = %d", m.Stats().Redirects.Load())
		}
	})
}

func TestLeaseExpiryHandsOver(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		m := NewManager(net, Options{Period: time.Second})
		defer m.Close()
		c1 := &Client{Net: net, Mgr: m.Addr(), Self: "c1"}
		c2 := &Client{Net: net, Mgr: m.Addr(), Self: "c2"}
		dir := types.RootIno

		r1, _ := c1.Acquire(context.Background(), dir)
		if !r1.Granted {
			t.Fatal("grant failed")
		}
		// c1 releases cleanly; c2 acquires without recovery and without the
		// SameLeader shortcut.
		if err := c1.Release(context.Background(), dir, r1.LeaseID, true); err != nil {
			t.Fatal(err)
		}
		r2, _ := c2.Acquire(context.Background(), dir)
		if !r2.Granted || r2.SameLeader || r2.NeedRecovery {
			t.Fatalf("c2 grant: %+v", r2)
		}
		// After c2 releases cleanly, c1 re-acquiring must NOT see SameLeader
		// (someone else held the directory in between).
		if err := c2.Release(context.Background(), dir, r2.LeaseID, true); err != nil {
			t.Fatal(err)
		}
		r3, _ := c1.Acquire(context.Background(), dir)
		if !r3.Granted || r3.SameLeader {
			t.Fatalf("c1 after interleaved holder: %+v", r3)
		}
	})
}

func TestCrashTriggersRecoveryFlow(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		m := NewManager(net, Options{Period: time.Second})
		defer m.Close()
		c1 := &Client{Net: net, Mgr: m.Addr(), Self: "c1"}
		c2 := &Client{Net: net, Mgr: m.Addr(), Self: "c2"}
		c3 := &Client{Net: net, Mgr: m.Addr(), Self: "c3"}
		dir := types.RootIno

		r1, _ := c1.Acquire(context.Background(), dir)
		if !r1.Granted {
			t.Fatal("grant failed")
		}
		// c1 "crashes": never releases. Within the grace window, acquires
		// must wait.
		env.Sleep(1500 * time.Millisecond) // expired at 1s, grace until 2s
		w, _ := c2.Acquire(context.Background(), dir)
		if !w.Wait {
			t.Fatalf("expected Wait during grace window: %+v", w)
		}
		env.Sleep(w.RetryAfter - env.Now() + time.Millisecond)

		// Past the grace window: the next acquirer is told to recover.
		r2, _ := c2.Acquire(context.Background(), dir)
		if !r2.Granted || !r2.NeedRecovery {
			t.Fatalf("expected recovery grant: %+v", r2)
		}
		// Others wait while recovery is in flight.
		w3, _ := c3.Acquire(context.Background(), dir)
		if !w3.Wait {
			t.Fatalf("expected Wait during recovery: %+v", w3)
		}
		// Recovery completes; the recoverer's lease is renewed.
		done, err := c2.RecoveryDone(context.Background(), dir, r2.LeaseID)
		if err != nil || !done.OK {
			t.Fatalf("RecoveryDone: %+v, %v", done, err)
		}
		// Now c3 is redirected to c2 (the lease is live again).
		r3, _ := c3.Acquire(context.Background(), dir)
		if !r3.Redirect || r3.Leader != "c2" {
			t.Fatalf("post-recovery: %+v", r3)
		}
		if m.Stats().Recoveries.Load() != 1 {
			t.Fatalf("recoveries = %d", m.Stats().Recoveries.Load())
		}
	})
}

func TestManagerRestartQuiesce(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		m := NewManager(net, Options{Period: time.Second, Restarted: true})
		defer m.Close()
		c := &Client{Net: net, Mgr: m.Addr(), Self: "c1"}
		w, err := c.Acquire(context.Background(), types.RootIno)
		if err != nil || !w.Wait || !w.Quiesce {
			t.Fatalf("acquire during quiesce: %+v, %v", w, err)
		}
		env.Sleep(w.RetryAfter - env.Now() + time.Millisecond)
		// The restart lost the chain state, so the manager cannot know whether
		// the directory's last leader crashed mid-journal: the first grant
		// waits out the data-lease grace and then forces a recovery.
		g, err := c.Acquire(context.Background(), types.RootIno)
		if err != nil || !g.Wait || g.Quiesce {
			t.Fatalf("first acquire after quiesce should wait out the grace: %+v, %v", g, err)
		}
		env.Sleep(g.RetryAfter - env.Now() + time.Millisecond)
		r, err := c.Acquire(context.Background(), types.RootIno)
		if err != nil || !r.Granted || !r.NeedRecovery {
			t.Fatalf("post-restart grant must carry NeedRecovery: %+v, %v", r, err)
		}
	})
}

func TestReleaseValidatesOwnership(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		m := NewManager(net, Options{Period: time.Second})
		defer m.Close()
		c1 := &Client{Net: net, Mgr: m.Addr(), Self: "c1"}
		c2 := &Client{Net: net, Mgr: m.Addr(), Self: "c2"}
		dir := types.RootIno
		r1, _ := c1.Acquire(context.Background(), dir)
		// Wrong client and wrong id must both be rejected.
		if err := c2.Release(context.Background(), dir, r1.LeaseID, true); err != nil {
			t.Fatal(err)
		}
		if r, _ := c2.Acquire(context.Background(), dir); !r.Redirect {
			t.Fatalf("foreign release must not free the lease: %+v", r)
		}
		if err := c1.Release(context.Background(), dir, r1.LeaseID+99, true); err != nil {
			t.Fatal(err)
		}
		if r, _ := c2.Acquire(context.Background(), dir); !r.Redirect {
			t.Fatalf("stale-id release must not free the lease: %+v", r)
		}
	})
}

func TestManyDirectoriesIndependent(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		m := NewManager(net, Options{Period: time.Second})
		defer m.Close()
		src := types.NewInoSource(1)
		g := sim.NewGroup(env)
		for i := 0; i < 64; i++ {
			i := i
			dir := src.Next()
			g.Go(func() {
				c := &Client{Net: net, Mgr: m.Addr(), Self: rpc.Addr("c" + string(rune('a'+i%26)) + string(rune('a'+i/26)))}
				r, err := c.Acquire(context.Background(), dir)
				if err != nil || !r.Granted {
					t.Errorf("client %d: %+v, %v", i, r, err)
					return
				}
				if err := c.Release(context.Background(), dir, r.LeaseID, true); err != nil {
					t.Errorf("client %d release: %v", i, err)
				}
			})
		}
		g.Wait()
		if got := m.Stats().Acquires.Load(); got != 64 {
			t.Fatalf("acquires = %d", got)
		}
	})
}

func TestExpireForTestHelper(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		m := NewManager(net, Options{Period: time.Hour})
		defer m.Close()
		c1 := &Client{Net: net, Mgr: m.Addr(), Self: "c1"}
		c2 := &Client{Net: net, Mgr: m.Addr(), Self: "c2"}
		r1, _ := c1.Acquire(context.Background(), types.RootIno)
		if !r1.Granted {
			t.Fatal("grant failed")
		}
		m.expireForTest(types.RootIno)
		// Lapsed without clean release → crash path (grace window first).
		w, _ := c2.Acquire(context.Background(), types.RootIno)
		if !w.Wait && !w.NeedRecovery {
			t.Fatalf("expected crash handling: %+v", w)
		}
	})
}

func TestRecoveryDoneValidation(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		m := NewManager(net, Options{Period: time.Second})
		defer m.Close()
		c1 := &Client{Net: net, Mgr: m.Addr(), Self: "c1"}
		c2 := &Client{Net: net, Mgr: m.Addr(), Self: "c2"}
		dir := types.RootIno
		r1, _ := c1.Acquire(context.Background(), dir)
		if !r1.Granted {
			t.Fatal("grant failed")
		}
		// RecoveryDone without a recovery in flight is rejected.
		if done, _ := c1.RecoveryDone(context.Background(), dir, r1.LeaseID); done.OK {
			t.Fatal("RecoveryDone accepted outside recovery")
		}
		// Crash + grace, then c2 recovers.
		env.Sleep(2500 * time.Millisecond)
		r2, _ := c2.Acquire(context.Background(), dir)
		if !r2.NeedRecovery {
			t.Fatalf("expected recovery grant: %+v", r2)
		}
		// The wrong client cannot complete someone else's recovery.
		if done, _ := c1.RecoveryDone(context.Background(), dir, r2.LeaseID); done.OK {
			t.Fatal("foreign RecoveryDone accepted")
		}
		// The wrong lease id is rejected too.
		if done, _ := c2.RecoveryDone(context.Background(), dir, r2.LeaseID+1); done.OK {
			t.Fatal("stale-id RecoveryDone accepted")
		}
		if done, _ := c2.RecoveryDone(context.Background(), dir, r2.LeaseID); !done.OK {
			t.Fatal("legitimate RecoveryDone rejected")
		}
	})
}

func TestSameHolderReacquireAfterLapse(t *testing.T) {
	// An idle leader whose lease lapsed re-acquires in place: no crash
	// handling, no metadata reload (SameLeader).
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		m := NewManager(net, Options{Period: time.Second})
		defer m.Close()
		c1 := &Client{Net: net, Mgr: m.Addr(), Self: "c1"}
		dir := types.RootIno
		r1, _ := c1.Acquire(context.Background(), dir)
		if !r1.Granted {
			t.Fatal("grant failed")
		}
		env.Sleep(3 * time.Second) // well past expiry, no release
		r2, _ := c1.Acquire(context.Background(), dir)
		if !r2.Granted || !r2.SameLeader || r2.NeedRecovery {
			t.Fatalf("same-holder reacquire: %+v", r2)
		}
		if r2.LeaseID != r1.LeaseID {
			t.Fatalf("lease chain broken: %d -> %d", r1.LeaseID, r2.LeaseID)
		}
	})
}

func TestUncleanReleaseForcesRecovery(t *testing.T) {
	// A holder that renounces with unflushed state (a failed Close flush, an
	// aborted recovery) may leave journal records behind. The release must
	// not free the directory: the next acquirer has to take the crashed-
	// holder path — grace wait, then a NeedRecovery grant.
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		m := NewManager(net, Options{Period: time.Second})
		defer m.Close()
		c1 := &Client{Net: net, Mgr: m.Addr(), Self: "c1"}
		c2 := &Client{Net: net, Mgr: m.Addr(), Self: "c2"}
		dir := types.RootIno
		r1, _ := c1.Acquire(context.Background(), dir)
		if !r1.Granted {
			t.Fatal("grant failed")
		}
		if err := c1.Release(context.Background(), dir, r1.LeaseID, false); err != nil {
			t.Fatal(err)
		}
		w, _ := c2.Acquire(context.Background(), dir)
		if w.Granted || !w.Wait {
			t.Fatalf("unclean release must impose the recovery grace: %+v", w)
		}
		env.Sleep(w.RetryAfter - env.Now() + time.Millisecond)
		r2, _ := c2.Acquire(context.Background(), dir)
		if !r2.Granted || !r2.NeedRecovery {
			t.Fatalf("grant after unclean release must carry NeedRecovery: %+v", r2)
		}
	})
}

func TestDeadRecovererRegrants(t *testing.T) {
	// A grantee that dies mid-recovery (no RecoveryDone) must not wedge the
	// directory: once its lease and the grace lapse, a fresh NeedRecovery
	// chain starts. Journal replay is idempotent, so the half-finished
	// predecessor is harmless.
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		m := NewManager(net, Options{Period: time.Second})
		defer m.Close()
		c1 := &Client{Net: net, Mgr: m.Addr(), Self: "c1"}
		c2 := &Client{Net: net, Mgr: m.Addr(), Self: "c2"}
		c3 := &Client{Net: net, Mgr: m.Addr(), Self: "c3"}
		dir := types.RootIno

		r1, _ := c1.Acquire(context.Background(), dir)
		if !r1.Granted {
			t.Fatal("grant failed")
		}
		env.Sleep(3 * time.Second) // c1 crashes silently; lease + grace lapse
		r2, _ := c2.Acquire(context.Background(), dir)
		if !r2.Granted || !r2.NeedRecovery {
			t.Fatalf("expected recovery grant: %+v", r2)
		}
		// c2 dies mid-recovery. While its lease (plus grace) is live, others
		// wait; afterwards a fresh recovery chain starts.
		w, _ := c3.Acquire(context.Background(), dir)
		if w.Granted || !w.Wait {
			t.Fatalf("recovery in flight, want wait: %+v", w)
		}
		env.Sleep(3 * time.Second)
		r3, _ := c3.Acquire(context.Background(), dir)
		if !r3.Granted || !r3.NeedRecovery {
			t.Fatalf("dead recoverer must yield a fresh recovery grant: %+v", r3)
		}
		if r3.LeaseID == r2.LeaseID {
			t.Fatal("fresh recovery chain must change the lease id")
		}
		if done, _ := c3.RecoveryDone(context.Background(), dir, r3.LeaseID); !done.OK {
			t.Fatal("new recoverer's RecoveryDone rejected")
		}
	})
}
