package lease

import (
	"fmt"
	"sort"
	"sync"

	"arkfs/internal/rpc"
	"arkfs/internal/types"
)

// Epoch versions the cluster's shard membership. Every membership change
// bumps it; epoch 0 means "no ring" (a single unsharded manager). Clients
// cache the ring and stamp every lease RPC with their epoch, so a shard can
// tell a stale client from a current one and answer with a redirect carrying
// the new ring instead of a wrong-shard grant.
type Epoch uint64

// Ring is the versioned shard membership: which lease managers exist and
// which one owns each directory. Routing is rendezvous (highest-random-weight)
// hashing — a pure function of (members, directory inode), byte-identical
// across processes, and minimal-movement: adding or removing one member only
// reassigns the directories that member gains or loses.
type Ring struct {
	Epoch   Epoch
	Members []rpc.Addr
}

// NewRing builds an epoch-1 ring over the given members (sorted, deduped).
func NewRing(members ...rpc.Addr) Ring {
	return Ring{Epoch: 1, Members: normalize(members)}
}

func normalize(members []rpc.Addr) []rpc.Addr {
	out := make([]rpc.Addr, 0, len(members))
	seen := make(map[rpc.Addr]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsZero reports the absence of a ring (unsharded deployment).
func (r Ring) IsZero() bool { return r.Epoch == 0 }

// Contains reports membership.
func (r Ring) Contains(a rpc.Addr) bool {
	for _, m := range r.Members {
		if m == a {
			return true
		}
	}
	return false
}

// With returns the next-epoch ring including a.
func (r Ring) With(a rpc.Addr) Ring {
	return Ring{Epoch: r.Epoch + 1, Members: normalize(append(append([]rpc.Addr{}, r.Members...), a))}
}

// Without returns the next-epoch ring excluding a.
func (r Ring) Without(a rpc.Addr) Ring {
	out := make([]rpc.Addr, 0, len(r.Members))
	for _, m := range r.Members {
		if m != a {
			out = append(out, m)
		}
	}
	return Ring{Epoch: r.Epoch + 1, Members: out}
}

// RouteAddr returns the member that owns dir: the highest rendezvous score
// wins, ties broken by address order so the choice is total.
func (r Ring) RouteAddr(dir types.Ino) rpc.Addr {
	var best rpc.Addr
	var bestScore uint64
	for _, m := range r.Members {
		s := rendezvous(m, dir)
		if best == "" || s > bestScore || (s == bestScore && m > best) {
			best, bestScore = m, s
		}
	}
	return best
}

// rendezvous scores one (member, directory) pair: FNV-1a over the member's
// address bytes followed by the inode bytes. Nothing here depends on process
// state, so every client and shard computes identical routes.
func rendezvous(m rpc.Addr, dir types.Ino) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(m); i++ {
		h ^= uint64(m[i])
		h *= 1099511628211
	}
	for _, b := range dir {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (r Ring) String() string {
	return fmt.Sprintf("ring{epoch %d, %v}", r.Epoch, r.Members)
}

// Router is the client-side routing surface: it answers "which shard owns
// this directory, and under which epoch do I believe that" and absorbs ring
// updates pushed back by shards in stale-epoch redirects. It replaces the
// old core.Options.LeaseRoute func(types.Ino) rpc.Addr hook.
type Router interface {
	// Route returns the shard to contact for dir and the epoch of the ring
	// that produced the answer (0 when routing statically).
	Route(dir types.Ino) (rpc.Addr, Epoch)
	// Update installs a newer ring; older or same-epoch rings are ignored.
	Update(Ring)
}

// StaticRouter routes every directory to one fixed manager — the unsharded
// deployment's Router. Updates are ignored: there is no ring to replace.
type StaticRouter rpc.Addr

// Route implements Router.
func (s StaticRouter) Route(types.Ino) (rpc.Addr, Epoch) { return rpc.Addr(s), 0 }

// Update implements Router.
func (StaticRouter) Update(Ring) {}

// RingRouter caches a Ring and routes by rendezvous hash. It is safe for
// concurrent use: the lease keeper, foreground acquires, and redirect-driven
// updates all share one instance per client.
type RingRouter struct {
	mu   sync.RWMutex
	ring Ring
}

// NewRouter returns a RingRouter seeded with r.
func NewRouter(r Ring) *RingRouter { return &RingRouter{ring: r} }

// Route implements Router.
func (rr *RingRouter) Route(dir types.Ino) (rpc.Addr, Epoch) {
	rr.mu.RLock()
	defer rr.mu.RUnlock()
	return rr.ring.RouteAddr(dir), rr.ring.Epoch
}

// Update implements Router. Only strictly newer rings are installed, so a
// delayed redirect carrying an old ring cannot roll the cache back.
func (rr *RingRouter) Update(nr Ring) {
	rr.mu.Lock()
	if nr.Epoch > rr.ring.Epoch {
		rr.ring = nr
	}
	rr.mu.Unlock()
}

// Ring returns the cached ring (for tests and debugging).
func (rr *RingRouter) Ring() Ring {
	rr.mu.RLock()
	defer rr.mu.RUnlock()
	return rr.ring
}
