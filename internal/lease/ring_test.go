package lease

import (
	"fmt"
	"testing"
	"time"

	"arkfs/internal/rpc"
	"arkfs/internal/types"
)

func inoFor(i int) types.Ino {
	var ino types.Ino
	ino[0] = byte(i >> 8)
	ino[1] = byte(i)
	ino[15] = 0x5a
	return ino
}

// Routing is a pure function of (members, inode): two independently built
// rings over the same membership — regardless of declaration order or
// duplicates — route every directory identically. This is what lets clients
// and shards compute ownership without ever exchanging a table.
func TestRingRoutingDeterministic(t *testing.T) {
	a := NewRing("lm-0", "lm-1", "lm-2", "lm-3")
	b := NewRing("lm-3", "lm-1", "lm-0", "lm-2", "lm-1") // shuffled + dup
	for i := 0; i < 4096; i++ {
		ino := inoFor(i)
		if a.RouteAddr(ino) != b.RouteAddr(ino) {
			t.Fatalf("ino %d: %s vs %s", i, a.RouteAddr(ino), b.RouteAddr(ino))
		}
	}
	if len(b.Members) != 4 {
		t.Fatalf("normalize kept %d members", len(b.Members))
	}
}

// The hash must not drift across code changes: a drifted hash silently
// reshuffles every directory on upgrade, which is exactly the movement the
// rendezvous scheme exists to avoid. Golden values pin it.
func TestRingRoutingGolden(t *testing.T) {
	r := NewRing("leasemgr-0", "leasemgr-1", "leasemgr-2")
	got := ""
	for i := 0; i < 8; i++ {
		got += string(r.RouteAddr(inoFor(i))[len("leasemgr-"):])
	}
	const want = "11202212"
	if got != want {
		t.Fatalf("routing drifted: got %q want %q", got, want)
	}
}

// Adding a member moves directories only onto the new member; removing one
// moves directories only off it (rendezvous minimal movement). Everything
// else stays put — the property that bounds handoff traffic.
func TestRingMinimalMovement(t *testing.T) {
	base := NewRing("lm-0", "lm-1", "lm-2")
	grown := base.With("lm-3")
	if grown.Epoch != base.Epoch+1 {
		t.Fatalf("With must bump the epoch: %d", grown.Epoch)
	}
	moved := 0
	for i := 0; i < 4096; i++ {
		ino := inoFor(i)
		was, is := base.RouteAddr(ino), grown.RouteAddr(ino)
		if was != is {
			moved++
			if is != "lm-3" {
				t.Fatalf("ino %d moved %s→%s, not to the new member", i, was, is)
			}
		}
	}
	if moved == 0 || moved > 4096/2 {
		t.Fatalf("implausible movement on grow: %d of 4096", moved)
	}
	shrunk := grown.Without("lm-1")
	for i := 0; i < 4096; i++ {
		ino := inoFor(i)
		was, is := grown.RouteAddr(ino), shrunk.RouteAddr(ino)
		if was != "lm-1" && was != is {
			t.Fatalf("ino %d moved %s→%s though its owner stayed", i, was, is)
		}
		if is == "lm-1" {
			t.Fatalf("ino %d still routes to the removed member", i)
		}
	}
}

// Shards spread roughly evenly: with 4 shards no shard should own a wildly
// disproportionate share of a large key population.
func TestRingBalance(t *testing.T) {
	r := NewRing("lm-0", "lm-1", "lm-2", "lm-3")
	counts := map[rpc.Addr]int{}
	const n = 8192
	for i := 0; i < n; i++ {
		counts[r.RouteAddr(inoFor(i))]++
	}
	for a, c := range counts {
		if c < n/8 || c > n/2 {
			t.Fatalf("shard %s owns %d of %d", a, c, n)
		}
	}
}

// A RingRouter only moves forward: delayed redirects carrying an older ring
// must not roll the cache back past a newer one.
func TestRingRouterMonotonic(t *testing.T) {
	r1 := NewRing("lm-0", "lm-1")
	r2 := r1.With("lm-2")
	rr := NewRouter(r1)
	rr.Update(r2)
	if rr.Ring().Epoch != r2.Epoch {
		t.Fatalf("newer ring not installed: %v", rr.Ring())
	}
	rr.Update(r1)
	if rr.Ring().Epoch != r2.Epoch {
		t.Fatalf("older ring rolled the cache back: %v", rr.Ring())
	}
	if _, e := rr.Route(types.RootIno); e != r2.Epoch {
		t.Fatalf("Route reports epoch %d, want %d", e, r2.Epoch)
	}
}

// StaticRouter is the unsharded deployment: fixed address, epoch 0, and ring
// updates are meaningless.
func TestStaticRouter(t *testing.T) {
	s := StaticRouter("leasemgr")
	a, e := s.Route(types.RootIno)
	if a != "leasemgr" || e != 0 {
		t.Fatalf("static route: %s, %d", a, e)
	}
	s.Update(NewRing("x", "y")) // must be a no-op, not a panic
	if a, _ := s.Route(inoFor(7)); a != "leasemgr" {
		t.Fatalf("static route changed: %s", a)
	}
}

// Snapshot codec: a populated grant table round-trips byte-exactly, and a
// flipped byte is detected as corruption rather than half-applied.
func TestSnapshotRoundTrip(t *testing.T) {
	dirs := map[types.Ino]*dirState{}
	for i := 0; i < 64; i++ {
		dirs[inoFor(i)] = &dirState{
			holder:     rpc.Addr(fmt.Sprintf("c%d", i%7)),
			leaseID:    uint64(100 + i),
			expiry:     time.Duration(1e9 + i*1e6),
			clean:      i%3 == 0,
			prevHolder: rpc.Addr(fmt.Sprintf("p%d", i%5)),
			recovering: i%11 == 0,
			recoverID:  uint64(i),
		}
	}
	sus := []suspect{{prev: NewRing("lm-0", "lm-1"), from: "lm-1", expiry: 5e9}}
	frame := encodeSnapshot(dirs, 999, sus)
	if string(frame) != string(encodeSnapshot(dirs, 999, sus)) {
		t.Fatal("encoding is not deterministic")
	}
	st, err := decodeSnapshot(frame)
	if err != nil {
		t.Fatal(err)
	}
	if st.nextID != 999 || len(st.dirs) != len(dirs) || len(st.suspects) != 1 {
		t.Fatalf("decode mismatch: %d dirs, nextID %d", len(st.dirs), st.nextID)
	}
	for ino, want := range dirs {
		got := st.dirs[ino]
		if got == nil || *got != *want {
			t.Fatalf("dir %v: got %+v want %+v", ino, got, want)
		}
	}
	if st.suspects[0].from != "lm-1" || st.suspects[0].prev.Epoch != 1 {
		t.Fatalf("suspect mangled: %+v", st.suspects[0])
	}
	bad := append([]byte(nil), frame...)
	bad[len(bad)/2] ^= 0x40
	if _, err := decodeSnapshot(bad); err == nil {
		t.Fatal("corrupt snapshot decoded cleanly")
	}
}
