package lease

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"arkfs/internal/rpc"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Grant-table snapshot codec. Each shard persists its whole table as one
// CRC-sealed object (wire.Seal trailer) under SnapshotKey(addr): the table is
// small — one fixed-size record per directory that ever chained a lease — and
// a single sealed object gives atomic replace semantics on the object store,
// so a torn write is detected (wire.ErrCorrupt) rather than half-applied.
// Encoding is deterministic (directories sorted by inode) so identical tables
// produce identical bytes across processes and replays.

// snapVersion guards the layout; a decoder seeing another version treats the
// snapshot as unusable (same path as corruption: conservative restart).
const snapVersion = 1

// snapshotState is the decoded form of a persisted grant table.
type snapshotState struct {
	nextID   uint64
	suspects []suspect
	dirs     map[types.Ino]*dirState
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendRing(buf []byte, r Ring) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.Epoch))
	buf = binary.AppendUvarint(buf, uint64(len(r.Members)))
	for _, m := range r.Members {
		buf = appendString(buf, string(m))
	}
	return buf
}

// encodeSnapshot serializes the grant table. Callers hold the manager lock;
// the result is sealed and ready for one store.Put.
func encodeSnapshot(dirs map[types.Ino]*dirState, nextID uint64, suspects []suspect) []byte {
	inos := make([]types.Ino, 0, len(dirs))
	for ino := range dirs {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool {
		a, b := inos[i], inos[j]
		for k := 0; k < len(a); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	buf := make([]byte, 0, 64+len(dirs)*64)
	buf = append(buf, snapVersion)
	buf = binary.AppendUvarint(buf, nextID)
	buf = binary.AppendUvarint(buf, uint64(len(suspects)))
	for _, s := range suspects {
		buf = appendRing(buf, s.prev)
		buf = appendString(buf, string(s.from))
		buf = binary.AppendVarint(buf, int64(s.expiry))
	}
	buf = binary.AppendUvarint(buf, uint64(len(inos)))
	for _, ino := range inos {
		d := dirs[ino]
		buf = append(buf, ino[:]...)
		buf = appendString(buf, string(d.holder))
		buf = binary.AppendUvarint(buf, d.leaseID)
		buf = binary.AppendVarint(buf, int64(d.expiry))
		var flags byte
		if d.clean {
			flags |= 1
		}
		if d.recovering {
			flags |= 2
		}
		buf = append(buf, flags)
		buf = appendString(buf, string(d.prevHolder))
		buf = binary.AppendUvarint(buf, d.recoverID)
	}
	return wire.Seal(buf)
}

// snapDecoder cursors through an unsealed snapshot body; the first short read
// poisons it, and the caller checks err once at the end.
type snapDecoder struct {
	buf []byte
	off int
	err error
}

func (d *snapDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", wire.ErrCorrupt, what, d.off)
	}
}

func (d *snapDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *snapDecoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *snapDecoder) bytes(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *snapDecoder) string(what string) string {
	n := d.uvarint(what + " length")
	if d.err != nil || n > uint64(len(d.buf)-d.off) {
		d.fail(what)
		return ""
	}
	return string(d.bytes(int(n), what))
}

func (d *snapDecoder) ring(what string) Ring {
	var r Ring
	r.Epoch = Epoch(d.uvarint(what + " epoch"))
	n := d.uvarint(what + " member count")
	if d.err != nil || n > uint64(len(d.buf)-d.off) {
		d.fail(what)
		return Ring{}
	}
	r.Members = make([]rpc.Addr, 0, n)
	for i := uint64(0); i < n; i++ {
		r.Members = append(r.Members, rpc.Addr(d.string(what+" member")))
	}
	return r
}

// decodeSnapshot parses a sealed grant-table object. Any failure — CRC, short
// buffer, unknown version — returns an error wrapping wire.ErrCorrupt, and
// the caller falls back to conservative cold-restart semantics.
func decodeSnapshot(frame []byte) (snapshotState, error) {
	var st snapshotState
	body, err := wire.Unseal(frame)
	if err != nil {
		return st, err
	}
	if len(body) < 1 || body[0] != snapVersion {
		return st, fmt.Errorf("%w: unsupported lease snapshot version", wire.ErrCorrupt)
	}
	d := &snapDecoder{buf: body, off: 1}
	st.nextID = d.uvarint("nextID")
	nsus := d.uvarint("suspect count")
	if d.err == nil && nsus > uint64(len(body)) {
		d.fail("suspect count")
	}
	for i := uint64(0); i < nsus && d.err == nil; i++ {
		var s suspect
		s.prev = d.ring("suspect ring")
		s.from = rpc.Addr(d.string("suspect from"))
		s.expiry = time.Duration(d.varint("suspect expiry"))
		st.suspects = append(st.suspects, s)
	}
	ndirs := d.uvarint("dir count")
	if d.err == nil && ndirs > uint64(len(body)) {
		d.fail("dir count")
	}
	st.dirs = make(map[types.Ino]*dirState, ndirs)
	for i := uint64(0); i < ndirs && d.err == nil; i++ {
		var ino types.Ino
		copy(ino[:], d.bytes(len(ino), "ino"))
		ds := &dirState{}
		ds.holder = rpc.Addr(d.string("holder"))
		ds.leaseID = d.uvarint("leaseID")
		ds.expiry = time.Duration(d.varint("expiry"))
		flags := d.bytes(1, "flags")
		if d.err == nil {
			ds.clean = flags[0]&1 != 0
			ds.recovering = flags[0]&2 != 0
		}
		ds.prevHolder = rpc.Addr(d.string("prevHolder"))
		ds.recoverID = d.uvarint("recoverID")
		if d.err == nil {
			st.dirs[ino] = ds
		}
	}
	if d.err != nil {
		return snapshotState{}, d.err
	}
	return st, nil
}
