package lease

import (
	"fmt"

	"arkfs/internal/rpc"
	"arkfs/internal/types"
)

// Sharded lease management is the paper's stated future work ("it would be
// beneficial to implement distributed coordination using a cluster of lease
// managers"). Directories hash statically onto managers; each shard is an
// ordinary Manager, so every property of the single-manager protocol (FCFS,
// extension, recovery gating, restart quiesce) holds per directory. There is
// no cross-shard state: a directory's entire lease lifecycle lives on one
// shard.
type Shards struct {
	mgrs []*Manager
}

// NewShards starts n managers at "<prefix>-0" … "<prefix>-(n-1)".
func NewShards(net *rpc.Network, n int, prefix string, opts Options) *Shards {
	if n <= 0 {
		n = 1
	}
	if prefix == "" {
		prefix = "leasemgr"
	}
	s := &Shards{}
	for i := 0; i < n; i++ {
		o := opts
		o.Addr = rpc.Addr(fmt.Sprintf("%s-%d", prefix, i))
		s.mgrs = append(s.mgrs, NewManager(net, o))
	}
	return s
}

// Route returns the address selector clients install (core.Options.LeaseRoute).
func (s *Shards) Route() func(types.Ino) rpc.Addr {
	addrs := make([]rpc.Addr, len(s.mgrs))
	for i, m := range s.mgrs {
		addrs[i] = m.Addr()
	}
	return func(dir types.Ino) rpc.Addr {
		return addrs[dir.Lo()%uint64(len(addrs))]
	}
}

// Period returns the shared lease duration.
func (s *Shards) Period() interface{ Nanoseconds() int64 } { return s.mgrs[0].Period() }

// Stats aggregates the shard counters.
func (s *Shards) Stats() (acquires, redirects, extensions int64) {
	for _, m := range s.mgrs {
		acquires += m.Stats().Acquires.Load()
		redirects += m.Stats().Redirects.Load()
		extensions += m.Stats().Extensions.Load()
	}
	return
}

// Close stops every shard.
func (s *Shards) Close() {
	for _, m := range s.mgrs {
		m.Close()
	}
}
