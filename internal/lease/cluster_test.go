package lease

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// movedDir finds a directory that base routes to a member of base but nr
// routes to want (any moved dir when want is "").
func movedDir(t *testing.T, base, nr Ring, want rpc.Addr) types.Ino {
	t.Helper()
	for i := 0; i < 65536; i++ {
		ino := inoFor(i)
		if base.RouteAddr(ino) != nr.RouteAddr(ino) && (want == "" || nr.RouteAddr(ino) == want) {
			return ino
		}
	}
	t.Fatal("no moved directory found")
	return types.Ino{}
}

func newTestCluster(t *testing.T, env sim.Env, shards int, store objstore.Store) (*rpc.Network, *Cluster) {
	t.Helper()
	net := rpc.NewNetwork(env, sim.NetModel{})
	c := NewCluster(net, ClusterOptions{
		Shards:  shards,
		Store:   store,
		Manager: Options{Period: time.Second, Obs: obs.NewRegistry()},
	})
	return net, c
}

// A sharded cluster routes each directory to exactly one shard, FCFS holds
// across shards, and clients follow the ring without configuration.
func TestClusterRoutesAndGrants(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net, cl := newTestCluster(t, env, 3, nil)
		defer cl.Close()
		c1 := &Client{Net: net, Self: "c1", Router: cl.Router()}
		c2 := &Client{Net: net, Self: "c2", Router: cl.Router()}
		for i := 0; i < 32; i++ {
			dir := inoFor(i)
			r, err := c1.Acquire(context.Background(), dir)
			if err != nil || !r.Granted {
				t.Fatalf("dir %d: %+v, %v", i, r, err)
			}
			r2, err := c2.Acquire(context.Background(), dir)
			if err != nil || r2.Granted || !r2.Redirect || r2.Leader != "c1" {
				t.Fatalf("dir %d FCFS violated: %+v, %v", i, r2, err)
			}
		}
		// Every shard saw some of the traffic.
		for _, s := range cl.Snapshot().Shards {
			if s.Acquires == 0 {
				t.Fatalf("shard %s idle; routing is degenerate", s.Addr)
			}
		}
	})
}

// AddShard hands live grants over: a directory that moves to the new shard
// keeps its holder, its fencing token, and its FCFS exclusion — with no
// grace-period stall — and a client still holding the old ring is redirected
// (typed StaleRing, never a wrong-shard grant) until it converges.
func TestAddShardHandoffKeepsGrants(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net, cl := newTestCluster(t, env, 2, nil)
		defer cl.Close()
		holder := &Client{Net: net, Self: "holder", Router: cl.Router()}
		rival := &Client{Net: net, Self: "rival", Router: cl.Router()}

		base := cl.Ring()
		grants := map[int]AcquireResp{}
		for i := 0; i < 64; i++ {
			r, err := holder.Acquire(context.Background(), inoFor(i))
			if err != nil || !r.Granted {
				t.Fatalf("seed grant %d: %+v, %v", i, r, err)
			}
			grants[i] = r
		}

		addr, err := cl.AddShard()
		if err != nil {
			t.Fatal(err)
		}
		nr := cl.Ring()
		if nr.Epoch != base.Epoch+1 || !nr.Contains(addr) {
			t.Fatalf("ring after AddShard: %v", nr)
		}

		moved := 0
		for i := 0; i < 64; i++ {
			dir := inoFor(i)
			if nr.RouteAddr(dir) == addr {
				moved++
			}
			// The holder extends through the redirect chain: same lease id,
			// SameLeader, no Wait (a Wait here would be the grace stall the
			// handoff exists to avoid).
			r, err := holder.Acquire(context.Background(), dir)
			if err != nil || !r.Granted || !r.SameLeader || r.LeaseID != grants[i].LeaseID {
				t.Fatalf("dir %d lost its chain across handoff: %+v (was %+v), %v", i, r, grants[i], err)
			}
			// FCFS still excludes the rival at the new owner.
			r2, err := rival.Acquire(context.Background(), dir)
			if err != nil || r2.Granted || !r2.Redirect || r2.Leader != "holder" {
				t.Fatalf("dir %d FCFS violated after handoff: %+v, %v", i, r2, err)
			}
		}
		if moved == 0 {
			t.Fatal("no directory moved to the new shard; test is vacuous")
		}
		if hr := cl.cMoved.Value(); hr == 0 {
			t.Fatalf("handoff moved counter is zero (moved %d dirs)", moved)
		}
		if lost := cl.cLost.Value(); lost != 0 {
			t.Fatalf("handoff lost %d grants on a healthy network", lost)
		}
		// Both client routers converged onto the new ring via redirects.
		if e := holder.Router.(*RingRouter).Ring().Epoch; e != nr.Epoch {
			t.Fatalf("holder router stuck at epoch %d", e)
		}
	})
}

// RemoveShard migrates the victim's grants to the survivors and leaves a
// tombstone that teaches stale clients the final ring.
func TestRemoveShardTombstoneConverges(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net, cl := newTestCluster(t, env, 3, nil)
		defer cl.Close()
		holder := &Client{Net: net, Self: "holder", Router: cl.Router()}
		base := cl.Ring()
		victim := base.Members[0]

		// Seed grants, some of which live on the victim.
		grants := map[int]AcquireResp{}
		onVictim := 0
		for i := 0; i < 64; i++ {
			if base.RouteAddr(inoFor(i)) == victim {
				onVictim++
			}
			r, err := holder.Acquire(context.Background(), inoFor(i))
			if err != nil || !r.Granted {
				t.Fatalf("seed grant %d: %+v, %v", i, r, err)
			}
			grants[i] = r
		}
		if onVictim == 0 {
			t.Fatal("victim owned nothing; test is vacuous")
		}

		if err := cl.RemoveShard(victim); err != nil {
			t.Fatal(err)
		}
		if cl.Ring().Contains(victim) {
			t.Fatal("victim still in the ring")
		}

		// A client that never heard about the removal still routes to the
		// victim; the tombstone redirects it and it converges in one hop.
		stale := &Client{Net: net, Self: "holder", Router: NewRouter(base)}
		for i := 0; i < 64; i++ {
			r, err := stale.Acquire(context.Background(), inoFor(i))
			if err != nil || !r.Granted || !r.SameLeader || r.LeaseID != grants[i].LeaseID {
				t.Fatalf("dir %d via stale ring: %+v (was %+v), %v", i, r, grants[i], err)
			}
		}
		if e := stale.Router.(*RingRouter).Ring().Epoch; e != cl.Ring().Epoch {
			t.Fatalf("stale router did not converge: epoch %d", e)
		}
	})
}

// Handoff under concurrency: clients keep acquiring and extending while the
// membership changes underneath them. Run with -race; the invariant checked
// is that no directory ever reports two simultaneous leaders.
func TestClusterReshardUnderTraffic(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net, cl := newTestCluster(t, env, 2, nil)
		defer cl.Close()

		const clients, dirs = 8, 24
		var mu sync.Mutex
		leaders := map[int]rpc.Addr{} // dir -> granted holder (exclusive)
		wg := sim.NewGroup(env)
		for ci := 0; ci < clients; ci++ {
			self := rpc.Addr(fmt.Sprintf("c%d", ci))
			c := &Client{Net: net, Self: self, Router: cl.Router()}
			wg.Go(func() {
				for round := 0; round < 30; round++ {
					dir := (round + int(self[1])) % dirs
					r, err := c.Acquire(context.Background(), inoFor(dir))
					if err != nil {
						continue // redirect loop during a reshard: retryable
					}
					if r.Granted {
						mu.Lock()
						if cur, held := leaders[dir]; held && cur != self {
							mu.Unlock()
							t.Errorf("dir %d granted to %s while %s holds it", dir, self, cur)
							return
						}
						leaders[dir] = self
						mu.Unlock()
						env.Sleep(time.Millisecond)
						mu.Lock()
						delete(leaders, dir)
						mu.Unlock()
						_ = c.Release(context.Background(), inoFor(dir), r.LeaseID, true)
					} else {
						env.Sleep(time.Millisecond)
					}
				}
			})
		}
		// Membership churn in the middle of the traffic.
		addr, err := cl.AddShard()
		if err != nil {
			t.Fatal(err)
		}
		env.Sleep(5 * time.Millisecond)
		if _, err := cl.AddShard(); err != nil {
			t.Fatal(err)
		}
		env.Sleep(5 * time.Millisecond)
		if err := cl.RemoveShard(addr); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	})
}

// Shard failover with a persisted grant table: a killed and replaced shard
// resumes its grants — the holder keeps its lease id, a rival is still
// redirected — instead of stalling every directory behind the full
// restart-amnesia grace.
func TestShardFailoverResumesFromSnapshot(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		store := objstore.NewMemStore()
		net, cl := newTestCluster(t, env, 2, store)
		defer cl.Close()
		holder := &Client{Net: net, Self: "holder", Router: cl.Router()}
		ring := cl.Ring()
		victim := ring.Members[0]

		grants := map[int]AcquireResp{}
		for i := 0; i < 48; i++ {
			r, err := holder.Acquire(context.Background(), inoFor(i))
			if err != nil || !r.Granted {
				t.Fatalf("seed grant %d: %+v, %v", i, r, err)
			}
			grants[i] = r
		}

		if err := cl.KillShard(victim); err != nil {
			t.Fatal(err)
		}
		env.Sleep(100 * time.Millisecond)
		if err := cl.RestartShard(victim); err != nil {
			t.Fatal(err)
		}

		rival := &Client{Net: net, Self: "rival", Router: cl.Router()}
		for i := 0; i < 48; i++ {
			dir := inoFor(i)
			if ring.RouteAddr(dir) != victim {
				continue
			}
			// The restarted shard serves from its snapshot: extension keeps
			// the chain, no quiesce wait, rival stays excluded.
			r, err := holder.Acquire(context.Background(), dir)
			if err != nil || !r.Granted || !r.SameLeader || r.LeaseID != grants[i].LeaseID {
				t.Fatalf("dir %d not resumed: %+v (was %+v), %v", i, r, grants[i], err)
			}
			r2, err := rival.Acquire(context.Background(), dir)
			if err != nil || r2.Granted || !r2.Redirect {
				t.Fatalf("dir %d rival after failover: %+v, %v", i, r2, err)
			}
		}
		m := cl.Shard(victim)
		if m == nil {
			t.Fatal("victim gone after restart")
		}
	})
}

// Without persistence the same failover must pay the conservative price:
// the restarted shard quiesces and the first grant on an unknown directory
// carries NeedRecovery. This is the PR 2 contract the snapshot path is
// allowed to skip only because it actually knows the grants.
func TestShardFailoverWithoutSnapshotStaysConservative(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net, cl := newTestCluster(t, env, 2, nil)
		defer cl.Close()
		holder := &Client{Net: net, Self: "holder", Router: cl.Router()}
		ring := cl.Ring()
		victim := ring.Members[0]
		dir := movedDirOn(t, ring, victim)

		if r, err := holder.Acquire(context.Background(), dir); err != nil || !r.Granted {
			t.Fatalf("seed: %+v, %v", r, err)
		}
		if err := cl.KillShard(victim); err != nil {
			t.Fatal(err)
		}
		if err := cl.RestartShard(victim); err != nil {
			t.Fatal(err)
		}
		// First answer during the quiesce window is a Wait, not a grant.
		m := cl.Shard(victim)
		resp := m.acquire(AcquireReq{Dir: dir, Client: "holder"}, uint64(ring.Epoch))
		if !resp.Wait || !resp.Quiesce {
			t.Fatalf("amnesiac restart must quiesce: %+v", resp)
		}
		env.Sleep(time.Second + time.Millisecond) // quiesce + unknown-holder lapse
		env.Sleep(time.Second)                    // crashed-holder grace
		resp = m.acquire(AcquireReq{Dir: dir, Client: "holder"}, uint64(ring.Epoch))
		if !resp.Granted || !resp.NeedRecovery {
			t.Fatalf("post-grace grant must carry NeedRecovery: %+v", resp)
		}
	})
}

// movedDirOn finds a directory that ring routes to addr.
func movedDirOn(t *testing.T, ring Ring, addr rpc.Addr) types.Ino {
	t.Helper()
	for i := 0; i < 65536; i++ {
		if ring.RouteAddr(inoFor(i)) == addr {
			return inoFor(i)
		}
	}
	t.Fatal("no directory routes to shard")
	return types.Ino{}
}

// A corrupt snapshot must degrade to cold-restart semantics, never to a
// half-applied grant table.
func TestCorruptSnapshotDegradesToColdRestart(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		store := objstore.NewMemStore()
		net, cl := newTestCluster(t, env, 2, store)
		defer cl.Close()
		holder := &Client{Net: net, Self: "holder", Router: cl.Router()}
		ring := cl.Ring()
		victim := ring.Members[0]
		dir := movedDirOn(t, ring, victim)
		if r, err := holder.Acquire(context.Background(), dir); err != nil || !r.Granted {
			t.Fatalf("seed: %+v, %v", r, err)
		}

		raw, err := store.Get(SnapshotKey(victim))
		if err != nil {
			t.Fatalf("snapshot not persisted: %v", err)
		}
		raw = append([]byte(nil), raw...)
		raw[len(raw)/3] ^= 0x10
		if err := store.Put(SnapshotKey(victim), raw); err != nil {
			t.Fatal(err)
		}

		if err := cl.KillShard(victim); err != nil {
			t.Fatal(err)
		}
		if err := cl.RestartShard(victim); err != nil {
			t.Fatal(err)
		}
		m := cl.Shard(victim)
		resp := m.acquire(AcquireReq{Dir: dir, Client: "holder"}, uint64(ring.Epoch))
		if !resp.Wait || !resp.Quiesce {
			t.Fatalf("corrupt snapshot must fall back to quiesce: %+v", resp)
		}
	})
}

// The stale-epoch redirect at the rpc layer: the epoch rides the envelope —
// WithRingEpoch on the caller's context, RingEpochFrom on the handler's —
// and a shard answers a request about territory it no longer owns with
// StaleRing carrying its ring, never a grant.
func TestStaleEpochRedirectAtRPCLayer(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		r1 := NewRing("lm-a", "lm-b")
		ma := NewManager(net, Options{Addr: "lm-a", Period: time.Second, Ring: r1})
		defer ma.Close()
		mb := NewManager(net, Options{Addr: "lm-b", Period: time.Second, Ring: r1})
		defer mb.Close()

		dirA := movedDirOn(t, r1, "lm-a")

		// Correct-epoch request to the owner: granted.
		ctx := rpc.WithRingEpoch(context.Background(), uint64(r1.Epoch))
		resp, err := net.CallFromCtx(ctx, "c1", "lm-a", AcquireReq{Dir: dirA, Client: "c1"})
		if err != nil || !resp.(AcquireResp).Granted {
			t.Fatalf("owner acquire: %+v, %v", resp, err)
		}

		// Same request to the wrong shard: typed StaleRing with the ring
		// attached, not a grant and not an error.
		resp, err = net.CallFromCtx(ctx, "c2", "lm-b", AcquireReq{Dir: dirA, Client: "c2"})
		if err != nil {
			t.Fatal(err)
		}
		ar := resp.(AcquireResp)
		if ar.Granted || !ar.StaleRing || ar.Ring.Epoch != r1.Epoch {
			t.Fatalf("wrong-shard acquire must redirect: %+v", ar)
		}

		// A client claiming a FUTURE epoch gets a Wait (the shard knows it
		// is behind), never a grant under a ring known to be stale.
		future := rpc.WithRingEpoch(context.Background(), uint64(r1.Epoch)+5)
		resp, err = net.CallFromCtx(future, "c3", "lm-a", AcquireReq{Dir: dirA, Client: "c3"})
		if err != nil {
			t.Fatal(err)
		}
		if ar := resp.(AcquireResp); ar.Granted || ar.StaleRing || !ar.Wait {
			t.Fatalf("future-epoch request must wait: %+v", ar)
		}

		// No epoch in the context at all (legacy caller): the zero epoch is
		// "no ring known", which still must not produce a wrong-shard grant.
		resp, err = net.CallFromCtx(context.Background(), "c4", "lm-b", AcquireReq{Dir: dirA, Client: "c4"})
		if err != nil {
			t.Fatal(err)
		}
		if ar := resp.(AcquireResp); ar.Granted || !ar.StaleRing {
			t.Fatalf("epochless wrong-shard acquire must redirect: %+v", ar)
		}
	})
}
