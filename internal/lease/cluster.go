package lease

import (
	"fmt"
	"time"

	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
)

// Cluster is an elastic group of lease-manager shards behind one consistent-
// hash ring. Directories map onto shards by rendezvous hashing, so each
// membership change moves only the minimal key range; each shard is an
// ordinary Manager, so every property of the single-manager protocol (FCFS,
// extension, recovery gating, restart quiesce) holds per directory — a
// directory's entire lease lifecycle lives on exactly one shard at a time.
//
// Membership changes are runtime operations. AddShard and RemoveShard bump
// the ring epoch and run the handoff state machine:
//
//  1. freeze — the gaining shard answers short waits on its new territory
//     (StartGain), so no grant can bypass an in-flight transfer;
//  2. cut over — each losing shard installs the new ring (BeginHandoff),
//     extracts the live grant state of every directory it loses, and from
//     that moment redirects those directories' clients to the new owner;
//  3. transfer — the extracted grants travel to the gaining shards
//     (HandoffReq); a failed transfer demotes its range to a suspicion
//     record, so only those directories pay the crash-grace stall;
//  4. thaw — the gaining shards unfreeze (FinishGain) and serve the moved
//     directories from the transferred chains, no grace period.
//
// Clients are not notified: they learn the new ring lazily from StaleRing
// redirects (the epoch they used rides each request's rpc envelope).
type Cluster struct {
	env    sim.Env
	net    *rpc.Network
	prefix string
	opts   Options

	// reshardMu serializes membership changes; handoff transfers block
	// through the environment, so this must be a sim mutex.
	reshardMu *sim.Mutex

	mu     *sim.Mutex
	ring   Ring
	mgrs   map[rpc.Addr]*Manager
	tombs  map[rpc.Addr]*Manager
	nextID int
	closed bool

	gEpoch    *obs.Gauge
	gShards   *obs.Gauge
	cMoved    *obs.Counter
	cLost     *obs.Counter
	cReshards *obs.Counter
}

// ClusterOptions configures a Cluster beyond the per-shard Options.
type ClusterOptions struct {
	// Shards is the initial shard count (default 1).
	Shards int
	// Prefix names the shards "<prefix>-0" … (default "leasemgr").
	Prefix string
	// Store, when non-nil, gives every shard grant-table persistence: each
	// chain mutation is snapshotted (sealed, CRC-trailed) before it is
	// acknowledged, and a restarted shard resumes instead of quiescing.
	Store objstore.Store
	// Manager carries the per-shard options (Period, Workers, Obs, …). Addr,
	// Ring and Store are managed by the cluster.
	Manager Options
}

// NewCluster starts an elastic lease cluster.
func NewCluster(net *rpc.Network, o ClusterOptions) *Cluster {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Prefix == "" {
		o.Prefix = "leasemgr"
	}
	o.Manager.Store = o.Store
	c := &Cluster{
		env:       net.Env(),
		net:       net,
		prefix:    o.Prefix,
		opts:      o.Manager,
		reshardMu: sim.NewMutex(net.Env()),
		mu:        sim.NewMutex(net.Env()),
		mgrs:      make(map[rpc.Addr]*Manager),
		tombs:     make(map[rpc.Addr]*Manager),
	}
	c.gEpoch = o.Manager.Obs.Gauge("lease.ring.epoch")
	c.gShards = o.Manager.Obs.Gauge("lease.ring.shards")
	c.cMoved = o.Manager.Obs.Counter("lease.handoff.moved")
	c.cLost = o.Manager.Obs.Counter("lease.handoff.lost")
	c.cReshards = o.Manager.Obs.Counter("lease.reshards")
	members := make([]rpc.Addr, o.Shards)
	for i := range members {
		members[i] = c.addrFor(i)
	}
	c.nextID = o.Shards
	c.ring = NewRing(members...)
	for _, a := range members {
		mo := c.opts
		mo.Addr = a
		mo.Ring = c.ring
		c.mgrs[a] = NewManager(net, mo)
	}
	c.gEpoch.Set(int64(c.ring.Epoch))
	c.gShards.Set(int64(len(members)))
	return c
}

func (c *Cluster) addrFor(i int) rpc.Addr {
	return rpc.Addr(fmt.Sprintf("%s-%d", c.prefix, i))
}

// Router returns a fresh per-client router seeded with the current ring.
// Each client owns its router: StaleRing redirects update it lazily, so a
// resharding never has to find or notify the client population.
func (c *Cluster) Router() Router {
	c.mu.Lock()
	defer c.mu.Unlock()
	return NewRouter(c.ring)
}

// Ring returns the cluster's current membership.
func (c *Cluster) Ring() Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring
}

// Period returns the shared lease duration, valid even before any shard
// exists.
func (c *Cluster) Period() time.Duration {
	if c.opts.Period > 0 {
		return c.opts.Period
	}
	return DefaultPeriod
}

// Shard returns the manager at addr (nil if absent or tombstoned).
func (c *Cluster) Shard(addr rpc.Addr) *Manager {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mgrs[addr]
}

// ShardSnapshot describes one live shard for observability.
type ShardSnapshot struct {
	Addr       rpc.Addr
	Dirs       int
	Acquires   int64
	Extensions int64
	Redirects  int64
	Recoveries int64
}

// ClusterSnapshot is a point-in-time view of the cluster for obs and the
// bench reports.
type ClusterSnapshot struct {
	Epoch      Epoch
	Members    []rpc.Addr
	Tombstones int
	Shards     []ShardSnapshot
}

// Snapshot captures the cluster's membership and per-shard counters.
func (c *Cluster) Snapshot() ClusterSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := ClusterSnapshot{Epoch: c.ring.Epoch, Tombstones: len(c.tombs)}
	snap.Members = append(snap.Members, c.ring.Members...)
	for _, a := range c.ring.Members {
		m := c.mgrs[a]
		if m == nil {
			continue
		}
		st := m.Stats()
		snap.Shards = append(snap.Shards, ShardSnapshot{
			Addr:       a,
			Dirs:       m.DirCount(),
			Acquires:   st.Acquires.Load(),
			Extensions: st.Extensions.Load(),
			Redirects:  st.Redirects.Load(),
			Recoveries: st.Recoveries.Load(),
		})
	}
	return snap
}

// Stats aggregates the shard counters.
func (c *Cluster) Stats() (acquires, redirects, extensions int64) {
	for _, s := range c.Snapshot().Shards {
		acquires += s.Acquires
		redirects += s.Redirects
		extensions += s.Extensions
	}
	return
}

// AddShard grows the cluster by one shard and hands the territory the new
// ring assigns to it over from the losing shards. It returns the new shard's
// address. Directories whose grant state transfers successfully never pay a
// grace stall; failed transfers are recorded as suspicion on the gainer.
func (c *Cluster) AddShard() (rpc.Addr, error) {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", fmt.Errorf("lease: cluster closed")
	}
	prev := c.ring
	addr := c.addrFor(c.nextID)
	c.nextID++
	nr := prev.With(addr)
	mo := c.opts
	mo.Addr = addr
	mo.Ring = nr
	nm := NewManager(c.net, mo)
	c.mgrs[addr] = nm
	c.mu.Unlock()

	// Freeze the new shard's territory before any loser starts redirecting
	// clients to it: a grant issued from blank state could bypass a live
	// chain still in flight inside a HandoffReq.
	nm.StartGain(prev, nr)
	c.mu.Lock()
	losers := make(map[rpc.Addr]*Manager, len(c.mgrs))
	for a, m := range c.mgrs {
		if a != addr {
			losers[a] = m
		}
	}
	c.mu.Unlock()
	c.reshard(prev, nr, losers, map[rpc.Addr]*Manager{addr: nm})
	return addr, nil
}

// RemoveShard shrinks the cluster, handing the removed shard's territory to
// the survivors. The shard itself stays on the network as a tombstone that
// answers every request with a StaleRing redirect, so clients holding the
// old ring converge instead of timing out.
func (c *Cluster) RemoveShard(addr rpc.Addr) error {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()

	c.mu.Lock()
	victim := c.mgrs[addr]
	if victim == nil {
		c.mu.Unlock()
		return fmt.Errorf("lease: no shard %q", addr)
	}
	if len(c.ring.Members) == 1 {
		c.mu.Unlock()
		return fmt.Errorf("lease: cannot remove the last shard")
	}
	prev := c.ring
	nr := prev.Without(addr)
	gainers := make(map[rpc.Addr]*Manager, len(nr.Members))
	for _, a := range nr.Members {
		gainers[a] = c.mgrs[a]
	}
	delete(c.mgrs, addr)
	c.tombs[addr] = victim
	c.mu.Unlock()

	// Rendezvous hashing moves keys only victim→survivors on a removal, so
	// the survivors gain and nobody else loses. Freeze them all first.
	for _, g := range gainers {
		g.StartGain(prev, nr)
	}
	c.reshard(prev, nr, map[rpc.Addr]*Manager{addr: victim}, gainers)
	victim.Tombstone(nr)
	return nil
}

// reshard runs the cut-over/transfer/thaw phases of a membership change:
// every losing shard installs nr and yields the grants it loses, the grants
// travel to their new owners, and the gainers thaw. Transfer failures become
// suspicion records delivered with the thaw.
func (c *Cluster) reshard(prev, nr Ring, losers, gainers map[rpc.Addr]*Manager) {
	c.mu.Lock()
	c.ring = nr
	c.mu.Unlock()

	var lost []suspect
	var inherited []suspect
	for a, m := range losers {
		moved, sus := m.BeginHandoff(nr)
		inherited = append(inherited, sus...)
		for to, grants := range moved {
			if err := c.transfer(a, to, nr.Epoch, grants); err != nil {
				// The grants are gone from the loser and never reached the
				// gainer: mark the loser's old range suspect, bounded by the
				// highest expiry that was in flight.
				var bound time.Duration
				for _, g := range grants {
					if g.Expiry > bound {
						bound = g.Expiry
					}
				}
				if floor := c.env.Now() + c.Period(); bound < floor {
					bound = floor
				}
				lost = append(lost, suspect{prev: prev, from: a, expiry: bound})
				c.cLost.Add(int64(len(grants)))
			} else {
				c.cMoved.Add(int64(len(grants)))
			}
		}
	}
	thaw := append(append([]suspect(nil), inherited...), lost...)
	for _, g := range gainers {
		g.FinishGain(thaw)
	}
	c.cReshards.Inc()
	c.gEpoch.Set(int64(nr.Epoch))
	c.gShards.Set(int64(len(nr.Members)))
}

// transfer ships one loser→gainer grant batch, retrying through transient
// network faults; a few attempts suffice because both ends are local
// listeners and the fault plan's windows are short.
func (c *Cluster) transfer(from, to rpc.Addr, epoch Epoch, grants []DirGrant) error {
	req := HandoffReq{Epoch: epoch, From: from, Grants: grants}
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			c.env.Sleep(time.Duration(attempt) * 2 * time.Millisecond)
		}
		var resp any
		resp, err = c.net.CallFrom(from, to, req)
		if err != nil {
			continue
		}
		if hr, ok := resp.(HandoffResp); ok && hr.OK {
			return nil
		}
		err = fmt.Errorf("lease: handoff %s→%s rejected", from, to)
	}
	return err
}

// KillShard crash-stops the shard at addr: its server vanishes from the
// network but it stays a ring member, so its territory stalls (or, with
// persistence, resumes at RestartShard) exactly like a crashed manager.
func (c *Cluster) KillShard(addr rpc.Addr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.mgrs[addr]
	if m == nil {
		return fmt.Errorf("lease: no shard %q", addr)
	}
	m.Close()
	return nil
}

// RestartShard replaces a killed shard with a fresh manager at the same
// address. With cluster persistence it resumes from its sealed grant-table
// snapshot — known directories grant immediately, only post-snapshot residue
// is conservative; without, it restarts amnesiac and quiesces one period.
func (c *Cluster) RestartShard(addr rpc.Addr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mgrs[addr] == nil {
		return fmt.Errorf("lease: no shard %q", addr)
	}
	mo := c.opts
	mo.Addr = addr
	mo.Ring = c.ring
	mo.Restarted = true
	c.mgrs[addr] = NewManager(c.net, mo)
	return nil
}

// Close stops every shard and tombstone. It is idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, m := range c.mgrs {
		m.Close()
	}
	for _, m := range c.tombs {
		m.Close()
	}
}
