package lease

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"arkfs/internal/obs"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// ManagerStats counts lease traffic for the benchmark reports.
type ManagerStats struct {
	Acquires, Extensions, Redirects, Releases, Recoveries atomic.Int64
}

// dirState tracks one directory's lease chain.
type dirState struct {
	holder     rpc.Addr
	leaseID    uint64
	expiry     time.Duration
	clean      bool     // the current/last holder released (or will hand off) cleanly
	prevHolder rpc.Addr // last holder that ended cleanly, for SameLeader
	recovering bool     // a grantee is running journal recovery
	recoverID  uint64   // lease id of the recovering grantee
	quietUntil time.Duration
}

// Manager is the cluster's lease manager. Acquiring and extending are cheap
// map operations (the paper found a single manager is not a bottleneck);
// expiries are detected lazily at the next acquire rather than with timers.
type Manager struct {
	env    sim.Env
	net    *rpc.Network
	addr   rpc.Addr
	period time.Duration
	server *rpc.Server

	mu      sync.Mutex
	dirs    map[types.Ino]*dirState
	nextID  uint64
	readyAt time.Duration // restart quiesce deadline
	// restarted: this manager lost its predecessor's in-memory chain state.
	// It cannot know which directories died with journal records pending, so
	// the first grant of every unknown directory is conservative: treated as
	// a crashed holder (grace wait, then a NeedRecovery grant). Recovery of
	// an intact directory is a cheap no-op, so safety costs little.
	restarted bool

	stats ManagerStats
	// Registry counters (nil-safe). Named counters are shared across sharded
	// managers attached to the same registry, so they aggregate cluster-wide.
	cAcquires, cExtensions, cRedirects *obs.Counter
	cReleases, cRecoveries, cWaits     *obs.Counter
	tracer                             *obs.Tracer // nil without Options.Obs
}

// Options configures a Manager.
type Options struct {
	Addr    rpc.Addr      // network address to listen on (default "leasemgr")
	Period  time.Duration // lease duration (default DefaultPeriod)
	Workers int           // server worker goroutines (default 4)
	// Restarted: begin in the post-crash quiesce state, refusing grants for
	// one lease period so stale leaders can expire (paper §III-E-2).
	Restarted bool
	// Obs, when non-nil, exposes the manager's counters (acquire/extension/
	// redirect/release/recovery/wait) in the registry at snapshot time and
	// enables the manager's trace ring: every handled request becomes a child
	// span under the caller's trace.
	Obs *obs.Registry
	// TraceSeed overrides the trace-ID stream seed (default: a hash of the
	// manager's address, deterministic across replays).
	TraceSeed uint64
}

// addrSeed derives a deterministic trace seed from an address: FNV-1a, so a
// replayed deployment mints the same manager span IDs without configuration.
func addrSeed(addr rpc.Addr) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return h
}

// NewManager starts a lease manager on net.
func NewManager(net *rpc.Network, opts Options) *Manager {
	if opts.Addr == "" {
		opts.Addr = "leasemgr"
	}
	if opts.Period <= 0 {
		opts.Period = DefaultPeriod
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	m := &Manager{
		env:    net.Env(),
		net:    net,
		addr:   opts.Addr,
		period: opts.Period,
		dirs:   make(map[types.Ino]*dirState),
	}
	if opts.Restarted {
		m.readyAt = m.env.Now() + m.period
		m.restarted = true
	}
	m.cAcquires = opts.Obs.Counter("lease.acquires")
	m.cExtensions = opts.Obs.Counter("lease.extensions")
	m.cRedirects = opts.Obs.Counter("lease.redirects")
	m.cReleases = opts.Obs.Counter("lease.releases")
	m.cRecoveries = opts.Obs.Counter("lease.recoveries")
	m.cWaits = opts.Obs.Counter("lease.waits")
	if opts.Obs != nil {
		m.tracer = obs.NewTracer(0, m.env.Now)
		m.tracer.SetProc(string(opts.Addr))
		seed := opts.TraceSeed
		if seed == 0 {
			seed = addrSeed(opts.Addr)
		}
		m.tracer.SetSeed(seed)
		opts.Obs.Func("obs.trace.spans", m.tracer.Total)
	}
	m.server = net.ListenCtx(opts.Addr, opts.Workers, m.handle)
	return m
}

// Tracer returns the manager's span ring (nil without Options.Obs; the nil
// tracer is a valid no-op sink).
func (m *Manager) Tracer() *obs.Tracer { return m.tracer }

// Addr returns the manager's network address.
func (m *Manager) Addr() rpc.Addr { return m.addr }

// Period returns the lease duration.
func (m *Manager) Period() time.Duration { return m.period }

// Stats returns the manager's counters.
func (m *Manager) Stats() *ManagerStats { return &m.stats }

// Close stops the manager's server. State is retained so a subsequent
// NewManager with Restarted simulates a manager crash + restart.
func (m *Manager) Close() { m.server.Close() }

func (m *Manager) handle(ctx context.Context, req any) any {
	// Each handled request is a child span under the caller's trace (or a
	// local root when the caller is untraced), so lease waits and redirects
	// show up inside the operation that paid for them.
	parent := obs.RemoteFrom(ctx)
	switch r := req.(type) {
	case AcquireReq:
		sp := m.tracer.StartChild(parent, "lease.Acquire", "")
		sp.SetDir(r.Dir)
		resp := m.acquire(r)
		sp.End(nil)
		return resp
	case ReleaseReq:
		sp := m.tracer.StartChild(parent, "lease.Release", "")
		sp.SetDir(r.Dir)
		resp := m.release(r)
		sp.End(nil)
		return resp
	case RecoveryDoneReq:
		sp := m.tracer.StartChild(parent, "lease.RecoveryDone", "")
		sp.SetDir(r.Dir)
		resp := m.recoveryDone(r)
		sp.End(nil)
		return resp
	default:
		return AcquireResp{} // unknown message: deny
	}
}

func (m *Manager) acquire(r AcquireReq) AcquireResp {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.env.Now()
	m.stats.Acquires.Add(1)
	m.cAcquires.Inc()

	if now < m.readyAt {
		m.cWaits.Inc()
		return AcquireResp{Wait: true, Quiesce: true, RetryAfter: m.readyAt}
	}

	d := m.dirs[r.Dir]
	if d == nil {
		if m.restarted {
			// No chain state survived the restart: the directory's last
			// holder may have crashed with journal records pending. Model it
			// as a crashed unknown holder whose lease lapsed at readyAt; the
			// crashed-holder branch below then enforces the data-lease grace
			// and hands the first acquirer a NeedRecovery grant.
			d = &dirState{holder: "?unknown", expiry: m.readyAt}
		} else {
			d = &dirState{clean: true}
		}
		m.dirs[r.Dir] = d
	}

	switch {
	case d.recovering && now < d.expiry+m.period:
		// A recovery is in flight; its owner may extend, others wait.
		if d.holder == r.Client && d.leaseID == d.recoverID {
			d.expiry = now + m.period
			return AcquireResp{Granted: true, LeaseID: d.leaseID, Expiry: d.expiry, SameLeader: true}
		}
		m.cWaits.Inc()
		return AcquireResp{Wait: true, RetryAfter: now + m.period/2}

	case d.recovering:
		// The recoverer itself died: its lease lapsed a full grace period ago
		// without a RecoveryDone. Start a fresh recovery chain; journal
		// replay is idempotent, so a half-finished predecessor is harmless.
		m.stats.Recoveries.Add(1)
		m.cRecoveries.Inc()
		m.nextID++
		d.holder, d.leaseID, d.expiry = r.Client, m.nextID, now+m.period
		d.recovering, d.recoverID = true, m.nextID
		d.clean = false
		return AcquireResp{Granted: true, LeaseID: d.leaseID, Expiry: d.expiry, NeedRecovery: true}

	case d.holder != "" && now < d.expiry:
		if d.holder == r.Client {
			// Extension: same chain, metadata stays valid.
			m.stats.Extensions.Add(1)
			m.cExtensions.Inc()
			d.expiry = now + m.period
			return AcquireResp{Granted: true, LeaseID: d.leaseID, Expiry: d.expiry, SameLeader: true}
		}
		m.stats.Redirects.Add(1)
		m.cRedirects.Inc()
		return AcquireResp{Redirect: true, Leader: d.holder}

	case d.holder != "" && !d.clean && d.holder == r.Client:
		// The holder itself re-acquires after letting its lease lapse (an
		// idle period, not a crash): its in-memory state is authoritative,
		// its data leases are its own, so re-grant in place.
		m.stats.Extensions.Add(1)
		m.cExtensions.Inc()
		d.expiry = now + m.period
		return AcquireResp{Granted: true, LeaseID: d.leaseID, Expiry: d.expiry, SameLeader: true}

	case d.holder != "" && !d.clean:
		// The lease lapsed without a clean release: the holder crashed.
		// Honor the paper's grace: wait one full period past expiry so any
		// data read/write leases the dead leader issued have lapsed too.
		if now < d.expiry+m.period {
			m.cWaits.Inc()
			return AcquireResp{Wait: true, RetryAfter: d.expiry + m.period}
		}
		m.stats.Recoveries.Add(1)
		m.cRecoveries.Inc()
		m.nextID++
		d.holder, d.leaseID, d.expiry = r.Client, m.nextID, now+m.period
		d.recovering, d.recoverID = true, m.nextID
		d.clean = false
		return AcquireResp{Granted: true, LeaseID: d.leaseID, Expiry: d.expiry, NeedRecovery: true}

	default:
		// Free (never held, cleanly released, or expired after a clean
		// hand-off). Grant; tell an unbroken repeat leader it may keep its
		// metatable.
		same := d.prevHolder == r.Client && d.prevHolder != ""
		m.nextID++
		d.holder, d.leaseID, d.expiry = r.Client, m.nextID, now+m.period
		d.clean = false // not clean until released; expiry without release = crash
		return AcquireResp{Granted: true, LeaseID: d.leaseID, Expiry: d.expiry, SameLeader: same}
	}
}

func (m *Manager) release(r ReleaseReq) ReleaseResp {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Releases.Add(1)
	m.cReleases.Inc()
	d := m.dirs[r.Dir]
	if d == nil || d.holder != r.Client || d.leaseID != r.LeaseID {
		return ReleaseResp{OK: false}
	}
	if !r.Clean {
		// The holder renounced with unflushed state (a failed Close flush, an
		// aborted recovery): its journal may hold records the metatable does
		// not. Freeing the directory outright would hand the next leader a
		// grant without NeedRecovery and those records would never replay.
		// Instead, lapse the lease on the spot: the next acquirer takes the
		// crashed-holder path — grace wait, then a recovery grant.
		d.expiry = m.env.Now()
		d.recovering = false
		d.clean = false
		d.prevHolder = ""
		return ReleaseResp{OK: true}
	}
	d.holder = ""
	d.recovering = false
	d.clean = true
	d.prevHolder = r.Client
	return ReleaseResp{OK: true}
}

func (m *Manager) recoveryDone(r RecoveryDoneReq) RecoveryDoneResp {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.dirs[r.Dir]
	if d == nil || !d.recovering || d.holder != r.Client || d.recoverID != r.LeaseID {
		return RecoveryDoneResp{OK: false}
	}
	// Renew the lease on the leader who performed the recovery (§III-E-1).
	d.recovering = false
	d.expiry = m.env.Now() + m.period
	return RecoveryDoneResp{OK: true, Expiry: d.expiry, LeaseID: d.leaseID}
}

// expireForTest force-lapses a directory's lease; used by tests to simulate
// the passage of time without waiting.
func (m *Manager) expireForTest(dir types.Ino) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d := m.dirs[dir]; d != nil {
		d.expiry = 0
	}
}

// Client is the client-side stub of the lease protocol. With a sharded
// manager cluster, Route selects the shard per directory; otherwise every
// request goes to Mgr.
type Client struct {
	Net   *rpc.Network
	Mgr   rpc.Addr
	Self  rpc.Addr
	Route func(types.Ino) rpc.Addr
}

func (c *Client) mgrFor(dir types.Ino) rpc.Addr {
	if c.Route != nil {
		return c.Route(dir)
	}
	return c.Mgr
}

// Acquire requests (or extends) the lease of dir. The caller's trace
// identity in ctx rides to the manager so its handling shows as a child
// span of the acquiring operation.
func (c *Client) Acquire(ctx context.Context, dir types.Ino) (AcquireResp, error) {
	resp, err := c.Net.CallFromCtx(ctx, c.Self, c.mgrFor(dir), AcquireReq{Dir: dir, Client: c.Self})
	if err != nil {
		return AcquireResp{}, err
	}
	return resp.(AcquireResp), nil
}

// Release gives the lease back; clean reports a full metadata flush.
func (c *Client) Release(ctx context.Context, dir types.Ino, id uint64, clean bool) error {
	_, err := c.Net.CallFromCtx(ctx, c.Self, c.mgrFor(dir), ReleaseReq{Dir: dir, LeaseID: id, Client: c.Self, Clean: clean})
	return err
}

// RecoveryDone reports a finished journal recovery and returns the renewed
// expiry.
func (c *Client) RecoveryDone(ctx context.Context, dir types.Ino, id uint64) (RecoveryDoneResp, error) {
	resp, err := c.Net.CallFromCtx(ctx, c.Self, c.mgrFor(dir), RecoveryDoneReq{Dir: dir, LeaseID: id, Client: c.Self})
	if err != nil {
		return RecoveryDoneResp{}, err
	}
	return resp.(RecoveryDoneResp), nil
}
