package lease

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/qos"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// ManagerStats counts lease traffic for the benchmark reports.
type ManagerStats struct {
	Acquires, Extensions, Redirects, Releases, Recoveries atomic.Int64
}

// dirState tracks one directory's lease chain.
type dirState struct {
	holder     rpc.Addr
	leaseID    uint64
	expiry     time.Duration
	clean      bool     // the current/last holder released (or will hand off) cleanly
	prevHolder rpc.Addr // last holder that ended cleanly, for SameLeader
	recovering bool     // a grantee is running journal recovery
	recoverID  uint64   // lease id of the recovering grantee
}

// suspect records a range of directories whose grant state was lost in
// transit: a handoff transfer that failed, or a shard that restarted without
// a snapshot and then handed its territory on. An unknown directory matching
// a suspect is treated like a crashed holder whose lease lapsed at expiry —
// grace wait, then a NeedRecovery grant — because the lost holder may have
// died with journal records pending. Suspicion, like the restarted flag, is
// kept for the manager's lifetime and rides handoffs so a second resharding
// cannot launder it away.
type suspect struct {
	prev   Ring          // membership before the change that lost the state
	from   rpc.Addr      // the shard whose state went missing
	expiry time.Duration // upper bound on any lost holder's believed expiry
}

// Manager is one lease shard (or, ringless, the single cluster manager).
// Acquiring and extending are cheap map operations (the paper found a single
// manager is not a bottleneck); expiries are detected lazily at the next
// acquire rather than with timers.
type Manager struct {
	env         sim.Env
	net         *rpc.Network
	addr        rpc.Addr
	ringAddr    rpc.Addr // identity in Ring.Members (Advertise, default addr)
	period      time.Duration
	serviceCost time.Duration
	server      *rpc.Server

	mu      sync.Mutex
	dirs    map[types.Ino]*dirState
	nextID  uint64
	readyAt time.Duration // restart quiesce deadline
	// restarted: this manager lost (some of) its predecessor's in-memory
	// chain state. It cannot know which directories died with journal records
	// pending, so the first grant of every unknown directory is conservative:
	// treated as a crashed holder (grace wait, then a NeedRecovery grant).
	// Recovery of an intact directory is a cheap no-op, so safety costs
	// little. A snapshot-resumed manager keeps the flag for the residue —
	// chain events after the last persisted snapshot — but skips the global
	// quiesce, because every persisted directory is served from live state.
	restarted bool
	// unknownExpiry is the synthetic lease expiry assigned to directories
	// unknown after a restart: an upper bound on any forgotten holder's
	// believed expiry (restart time + one period; the cold-restart quiesce
	// deadline coincides with it).
	unknownExpiry time.Duration

	// Elastic-cluster state. ring is the shard's view of the membership
	// (zero for an unsharded manager); gaining freezes newly-won territory
	// until the cluster confirms the handoff transfers are settled; tombstone
	// marks a removed shard that only answers ring redirects.
	ring      Ring
	gaining   *Ring // previous ring while a gain is in flight
	tombstone bool
	suspects  []suspect

	// Grant-table persistence (failover). When store is set, every chain
	// mutation — grant, release, recovery transition, handoff — is snapshotted
	// to one sealed object before the response is sent, so a restarted shard
	// resumes its grants instead of stalling every directory behind the
	// amnesia grace. Extensions are deliberately not persisted: the resume
	// path pads every loaded expiry by one period, which covers them.
	store    objstore.Store
	snapKey  string
	pmu      *sim.Mutex // serializes snapshot PUTs; store I/O blocks in env time
	snapSeq  uint64     // bumped under mu by every persist-worthy mutation
	snapWrit uint64     // highest seq durably written (under pmu)

	// qos rate-limits Acquire per tenant (nil admits everything).
	qos *qos.Limiter

	stats ManagerStats
	// Registry counters (nil-safe). Named counters are shared across sharded
	// managers attached to the same registry, so they aggregate cluster-wide.
	cAcquires, cExtensions, cRedirects *obs.Counter
	cReleases, cRecoveries, cWaits     *obs.Counter
	cRingRedirects                     *obs.Counter
	cHandoffOut, cHandoffIn            *obs.Counter
	cPersists, cPersistErrs, cResumed  *obs.Counter
	cShed                              *obs.Counter // admission refusals
	tracer                             *obs.Tracer  // nil without Options.Obs
}

// Options configures a Manager.
type Options struct {
	Addr    rpc.Addr      // network address to listen on (default "leasemgr")
	Period  time.Duration // lease duration (default DefaultPeriod)
	Workers int           // server worker goroutines (default 4)
	// Advertise is this shard's identity in Ring.Members when it differs from
	// Addr — a bridged deployment lists dialable "tcp!host:port" members in
	// the ring while each shard listens under a local name (a manager cannot
	// listen at a tcp! address: the bridge would dial itself). Every
	// ring-ownership decision compares against Advertise; default Addr.
	Advertise rpc.Addr
	// ServiceCost is the simulated CPU charge per handled request, serialized
	// over the Workers pool. Zero (the default) models an infinitely fast
	// server; scalability experiments set it so a single manager saturates
	// the way a real lease server's CPU does, which is what ring sharding is
	// for. Chaos and correctness tests leave it zero.
	ServiceCost time.Duration
	// Restarted: begin in the post-crash state. Without a persisted snapshot
	// this refuses grants for one lease period so stale leaders can expire
	// (paper §III-E-2); with one, known directories resume immediately and
	// only the unknown residue is conservative.
	Restarted bool
	// Ring is the shard's initial membership view (zero for unsharded). It is
	// installed before the server listens, so a shard never grants on a
	// directory the ring assigns elsewhere.
	Ring Ring
	// Store, when non-nil, persists the grant table as one CRC-sealed object
	// (SnapshotKey(Addr)) and resumes from it on construction.
	Store objstore.Store
	// Obs, when non-nil, exposes the manager's counters (acquire/extension/
	// redirect/release/recovery/wait/ring/handoff/persist) in the registry at
	// snapshot time and enables the manager's trace ring: every handled
	// request becomes a child span under the caller's trace.
	Obs *obs.Registry
	// TraceSeed overrides the trace-ID stream seed (default: a hash of the
	// manager's address, deterministic across replays).
	TraceSeed uint64
	// QoS, when non-nil, rate-limits Acquire requests per tenant: a refusal
	// answers with the existing Wait/RetryAfter mechanism, so the client's
	// budgeted wait loop absorbs it without new protocol. Release, recovery
	// handshakes, and handoffs are never limited — they shrink load.
	QoS *qos.Limiter
	// Limits bounds the manager's RPC inbox and queue wait (see
	// rpc.ServerLimits). Zero value means no limits.
	Limits rpc.ServerLimits
}

// addrSeed derives a deterministic trace seed from an address: FNV-1a, so a
// replayed deployment mints the same manager span IDs without configuration.
func addrSeed(addr rpc.Addr) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return h
}

// NewManager starts a lease manager on net.
func NewManager(net *rpc.Network, opts Options) *Manager {
	if opts.Addr == "" {
		opts.Addr = "leasemgr"
	}
	if opts.Period <= 0 {
		opts.Period = DefaultPeriod
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Advertise == "" {
		opts.Advertise = opts.Addr
	}
	m := &Manager{
		env:         net.Env(),
		net:         net,
		addr:        opts.Addr,
		ringAddr:    opts.Advertise,
		period:      opts.Period,
		serviceCost: opts.ServiceCost,
		dirs:        make(map[types.Ino]*dirState),
		ring:        opts.Ring,
		qos:         opts.QoS,
	}
	m.cAcquires = opts.Obs.Counter("lease.acquires")
	m.cExtensions = opts.Obs.Counter("lease.extensions")
	m.cRedirects = opts.Obs.Counter("lease.redirects")
	m.cReleases = opts.Obs.Counter("lease.releases")
	m.cRecoveries = opts.Obs.Counter("lease.recoveries")
	m.cWaits = opts.Obs.Counter("lease.waits")
	m.cRingRedirects = opts.Obs.Counter("lease.ring.redirects")
	m.cHandoffOut = opts.Obs.Counter("lease.handoff.sent")
	m.cHandoffIn = opts.Obs.Counter("lease.handoff.received")
	m.cPersists = opts.Obs.Counter("lease.persist.writes")
	m.cPersistErrs = opts.Obs.Counter("lease.persist.errors")
	m.cResumed = opts.Obs.Counter("lease.resume.dirs")
	m.cShed = opts.Obs.Counter("qos.shed.lease")
	if opts.Store != nil {
		m.store = opts.Store
		m.snapKey = SnapshotKey(opts.Addr)
		m.pmu = sim.NewMutex(m.env)
	}
	resumed := m.resume(opts)
	if opts.Restarted && !resumed {
		m.readyAt = m.env.Now() + m.period
		m.restarted = true
		m.unknownExpiry = m.readyAt
	}
	if opts.Obs != nil {
		m.tracer = obs.NewTracer(0, m.env.Now)
		m.tracer.SetProc(string(opts.Addr))
		seed := opts.TraceSeed
		if seed == 0 {
			seed = addrSeed(opts.Addr)
		}
		m.tracer.SetSeed(seed)
		opts.Obs.Func("obs.trace.spans", m.tracer.Total)
	}
	m.server = net.ListenCtx(opts.Addr, opts.Workers, m.handle, opts.Limits)
	return m
}

// resume loads the persisted grant table, if any. It returns true when a
// valid snapshot was applied: the shard then serves known directories
// immediately (no quiesce) and treats only the unknown residue as crashed.
func (m *Manager) resume(opts Options) bool {
	if m.store == nil {
		return false
	}
	raw, err := m.store.Get(m.snapKey)
	if errors.Is(err, types.ErrNotExist) {
		return false // first boot of this shard
	}
	now := m.env.Now()
	conservative := func() {
		// A snapshot existed but cannot be trusted (read error or CRC
		// failure): fall back to full-amnesia restart semantics.
		m.readyAt = now + m.period
		m.restarted = true
		m.unknownExpiry = m.readyAt
		m.cPersistErrs.Inc()
	}
	if err != nil {
		conservative()
		return true
	}
	st, derr := decodeSnapshot(raw)
	if derr != nil {
		conservative()
		return true
	}
	// Every loaded expiry is padded to now+period: the true holder may have
	// extended after the last persisted chain event, and its believed expiry
	// is bounded by (crash time + period) <= (now + period). A live holder
	// resumes through an ordinary extension; a dead one lapses into the
	// normal crashed-holder grace.
	for ino, d := range st.dirs {
		if d.holder != "" && d.expiry < now+m.period {
			d.expiry = now + m.period
		}
		m.dirs[ino] = d
	}
	m.nextID = st.nextID
	m.suspects = st.suspects
	m.restarted = true // residue: chain events after the last snapshot
	m.unknownExpiry = now + m.period
	m.cResumed.Add(int64(len(st.dirs)))
	return true
}

// SnapshotKey is the object-store key of a shard's persisted grant table.
// The "lm:" prefix sits outside the PRT namespace; fsck recognizes it as
// control-plane state.
func SnapshotKey(addr rpc.Addr) string { return SnapshotPrefix + string(addr) }

// SnapshotPrefix prefixes every persisted grant-table object.
const SnapshotPrefix = "lm:"

// Tracer returns the manager's span ring (nil without Options.Obs; the nil
// tracer is a valid no-op sink).
func (m *Manager) Tracer() *obs.Tracer { return m.tracer }

// Addr returns the manager's network address.
func (m *Manager) Addr() rpc.Addr { return m.addr }

// Period returns the lease duration.
func (m *Manager) Period() time.Duration { return m.period }

// Stats returns the manager's counters.
func (m *Manager) Stats() *ManagerStats { return &m.stats }

// DirCount returns the number of directories with materialized chain state.
func (m *Manager) DirCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dirs)
}

// RingView returns the shard's current membership view.
func (m *Manager) RingView() Ring {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring
}

// Close stops the manager's server. State is retained so a subsequent
// NewManager with Restarted simulates a manager crash + restart.
func (m *Manager) Close() { m.server.Close() }

func (m *Manager) handle(ctx context.Context, req any) any {
	// Each handled request is a child span under the caller's trace (or a
	// local root when the caller is untraced), so lease waits and redirects
	// show up inside the operation that paid for them. The caller's ring
	// epoch rides the rpc envelope, not the message.
	parent := obs.RemoteFrom(ctx)
	epoch := rpc.RingEpochFrom(ctx)
	// The caller's tenant and this request's inbox wait ride the worker
	// context; stamping them on the manager span attributes shard queueing
	// to the tenant that paid for it.
	tenant := obs.TenantFrom(ctx)
	wait := obs.QueueWaitFrom(ctx)
	span := func(op string) *obs.Span {
		sp := m.tracer.StartChild(parent, op, "")
		sp.SetTenant(tenant)
		sp.SetWait(wait)
		return sp
	}
	if m.serviceCost > 0 {
		// Charged inside the worker goroutine: Workers requests are serviced
		// concurrently, the rest queue — a real server's CPU, not a delay.
		m.env.Sleep(m.serviceCost)
	}
	switch r := req.(type) {
	case AcquireReq:
		sp := span("lease.Acquire")
		sp.SetDir(r.Dir)
		// Per-tenant admission rides the existing Wait/RetryAfter protocol:
		// a refused Acquire looks exactly like a busy directory, which the
		// client's budgeted wait loop already knows how to absorb.
		if m.qos != nil {
			if ok, after := m.qos.Admit(tenant, time.Unix(0, int64(m.env.Now()))); !ok {
				m.cShed.Inc()
				resp := AcquireResp{Wait: true, RetryAfter: m.env.Now() + after}
				sp.End(nil)
				return resp
			}
		}
		resp := m.acquire(r, epoch)
		sp.End(nil)
		return resp
	case ReleaseReq:
		sp := span("lease.Release")
		sp.SetDir(r.Dir)
		resp := m.release(r, epoch)
		sp.End(nil)
		return resp
	case RecoveryDoneReq:
		sp := span("lease.RecoveryDone")
		sp.SetDir(r.Dir)
		resp := m.recoveryDone(r, epoch)
		sp.End(nil)
		return resp
	case HandoffReq:
		sp := span("lease.Handoff")
		resp := m.acceptHandoff(r)
		sp.End(nil)
		return resp
	default:
		return AcquireResp{} // unknown message: deny
	}
}

// ringCheckLocked classifies a request against the shard's membership view:
// redirect (the ring assigns dir elsewhere, or this shard is a tombstone) or
// wait (the caller knows a newer ring than this shard, or the shard is still
// importing a gained range). Both are cluster-wide conditions, never grants.
func (m *Manager) ringCheckLocked(dir types.Ino, reqEpoch uint64) (redirect, wait bool) {
	if m.tombstone {
		return true, false
	}
	if m.ring.IsZero() {
		return false, false
	}
	if reqEpoch > uint64(m.ring.Epoch) {
		// The client has seen a membership change this shard hasn't: do not
		// grant under a ring known to be stale, and do not push ours back.
		return false, true
	}
	if m.ring.RouteAddr(dir) != m.ringAddr {
		return true, false
	}
	if m.gaining != nil && m.gaining.RouteAddr(dir) != m.ringAddr {
		// Newly-gained territory with handoff transfers still in flight:
		// granting now could bypass a live grant queued in a HandoffReq.
		return false, true
	}
	return false, false
}

// persistLocked encodes the grant table when persistence is on. Must be
// called with mu held, after the mutation; the caller hands the result to
// maybePersist outside the lock, before sending the response.
func (m *Manager) persistLocked() ([]byte, uint64) {
	if m.store == nil || m.tombstone {
		return nil, 0
	}
	m.snapSeq++
	return encodeSnapshot(m.dirs, m.nextID, m.suspects), m.snapSeq
}

// maybePersist writes one encoded snapshot, keeping write order: a snapshot
// older than the last durable one is dropped. A failed PUT is counted, not
// fatal — the residue handling of a future restart covers any grant that was
// acknowledged but never persisted.
func (m *Manager) maybePersist(snap []byte, seq uint64) {
	if snap == nil {
		return
	}
	m.pmu.Lock()
	if seq > m.snapWrit {
		if err := m.store.Put(m.snapKey, snap); err != nil {
			m.cPersistErrs.Inc()
		} else {
			m.snapWrit = seq
			m.cPersists.Inc()
		}
	}
	m.pmu.Unlock()
}

func (m *Manager) acquire(r AcquireReq, reqEpoch uint64) AcquireResp {
	m.mu.Lock()
	resp, snap, seq := m.acquireLocked(r, reqEpoch)
	m.mu.Unlock()
	// Chain-creating grants are made durable before they are acknowledged.
	m.maybePersist(snap, seq)
	return resp
}

func (m *Manager) acquireLocked(r AcquireReq, reqEpoch uint64) (AcquireResp, []byte, uint64) {
	now := m.env.Now()
	m.stats.Acquires.Add(1)
	m.cAcquires.Inc()

	if redirect, wait := m.ringCheckLocked(r.Dir, reqEpoch); redirect {
		m.cRingRedirects.Inc()
		return AcquireResp{StaleRing: true, Ring: m.ring}, nil, 0
	} else if wait {
		m.cWaits.Inc()
		return AcquireResp{Wait: true, Quiesce: true, RetryAfter: now + m.period/16}, nil, 0
	}

	if now < m.readyAt {
		m.cWaits.Inc()
		return AcquireResp{Wait: true, Quiesce: true, RetryAfter: m.readyAt}, nil, 0
	}

	d := m.dirs[r.Dir]
	if d == nil {
		switch {
		case m.restarted:
			// No chain state survived the restart: the directory's last
			// holder may have crashed with journal records pending. Model it
			// as a crashed unknown holder whose lease lapsed at the restart
			// bound; the crashed-holder branch below then enforces the
			// data-lease grace and hands the first acquirer a NeedRecovery
			// grant.
			d = &dirState{holder: "?unknown", expiry: m.unknownExpiry}
		case m.suspectExpiryLocked(r.Dir) > 0:
			// The directory sits in a range whose grant state was lost in a
			// failed handoff (or behind an amnesiac predecessor shard): same
			// conservative treatment, scoped to the suspect range instead of
			// the whole shard.
			d = &dirState{holder: "?unknown", expiry: m.suspectExpiryLocked(r.Dir)}
		default:
			d = &dirState{clean: true}
		}
		m.dirs[r.Dir] = d
	}

	switch {
	case d.recovering && now < d.expiry+m.period:
		// A recovery is in flight; its owner may extend, others wait.
		if d.holder == r.Client && d.leaseID == d.recoverID {
			d.expiry = now + m.period
			return AcquireResp{Granted: true, LeaseID: d.leaseID, Expiry: d.expiry, SameLeader: true}, nil, 0
		}
		m.cWaits.Inc()
		return AcquireResp{Wait: true, RetryAfter: now + m.period/2}, nil, 0

	case d.recovering:
		// The recoverer itself died: its lease lapsed a full grace period ago
		// without a RecoveryDone. Start a fresh recovery chain; journal
		// replay is idempotent, so a half-finished predecessor is harmless.
		m.stats.Recoveries.Add(1)
		m.cRecoveries.Inc()
		m.nextID++
		d.holder, d.leaseID, d.expiry = r.Client, m.nextID, now+m.period
		d.recovering, d.recoverID = true, m.nextID
		d.clean = false
		snap, seq := m.persistLocked()
		return AcquireResp{Granted: true, LeaseID: d.leaseID, Expiry: d.expiry, NeedRecovery: true}, snap, seq

	case d.holder != "" && now < d.expiry:
		if d.holder == r.Client {
			// Extension: same chain, metadata stays valid. Not persisted —
			// the resume path's one-period expiry pad covers extensions.
			m.stats.Extensions.Add(1)
			m.cExtensions.Inc()
			d.expiry = now + m.period
			return AcquireResp{Granted: true, LeaseID: d.leaseID, Expiry: d.expiry, SameLeader: true}, nil, 0
		}
		m.stats.Redirects.Add(1)
		m.cRedirects.Inc()
		return AcquireResp{Redirect: true, Leader: d.holder}, nil, 0

	case d.holder != "" && !d.clean && d.holder == r.Client:
		// The holder itself re-acquires after letting its lease lapse (an
		// idle period, not a crash): its in-memory state is authoritative,
		// its data leases are its own, so re-grant in place.
		m.stats.Extensions.Add(1)
		m.cExtensions.Inc()
		d.expiry = now + m.period
		return AcquireResp{Granted: true, LeaseID: d.leaseID, Expiry: d.expiry, SameLeader: true}, nil, 0

	case d.holder != "" && !d.clean:
		// The lease lapsed without a clean release: the holder crashed.
		// Honor the paper's grace: wait one full period past expiry so any
		// data read/write leases the dead leader issued have lapsed too.
		if now < d.expiry+m.period {
			m.cWaits.Inc()
			return AcquireResp{Wait: true, RetryAfter: d.expiry + m.period}, nil, 0
		}
		m.stats.Recoveries.Add(1)
		m.cRecoveries.Inc()
		m.nextID++
		d.holder, d.leaseID, d.expiry = r.Client, m.nextID, now+m.period
		d.recovering, d.recoverID = true, m.nextID
		d.clean = false
		snap, seq := m.persistLocked()
		return AcquireResp{Granted: true, LeaseID: d.leaseID, Expiry: d.expiry, NeedRecovery: true}, snap, seq

	default:
		// Free (never held, cleanly released, or expired after a clean
		// hand-off). Grant; tell an unbroken repeat leader it may keep its
		// metatable.
		same := d.prevHolder == r.Client && d.prevHolder != ""
		m.nextID++
		d.holder, d.leaseID, d.expiry = r.Client, m.nextID, now+m.period
		d.clean = false // not clean until released; expiry without release = crash
		snap, seq := m.persistLocked()
		return AcquireResp{Granted: true, LeaseID: d.leaseID, Expiry: d.expiry, SameLeader: same}, snap, seq
	}
}

// suspectExpiryLocked returns the synthetic expiry bound for dir when it
// falls in a suspect range (0 otherwise).
func (m *Manager) suspectExpiryLocked(dir types.Ino) time.Duration {
	var e time.Duration
	for _, s := range m.suspects {
		if s.prev.RouteAddr(dir) == s.from && s.expiry > e {
			e = s.expiry
		}
	}
	return e
}

func (m *Manager) release(r ReleaseReq, reqEpoch uint64) ReleaseResp {
	m.mu.Lock()
	resp, snap, seq := m.releaseLocked(r, reqEpoch)
	m.mu.Unlock()
	m.maybePersist(snap, seq)
	return resp
}

func (m *Manager) releaseLocked(r ReleaseReq, reqEpoch uint64) (ReleaseResp, []byte, uint64) {
	m.stats.Releases.Add(1)
	m.cReleases.Inc()
	if redirect, wait := m.ringCheckLocked(r.Dir, reqEpoch); redirect || wait {
		m.cRingRedirects.Inc()
		return ReleaseResp{StaleRing: true, Ring: m.ring}, nil, 0
	}
	d := m.dirs[r.Dir]
	if d == nil || d.holder != r.Client || d.leaseID != r.LeaseID {
		return ReleaseResp{OK: false}, nil, 0
	}
	if !r.Clean {
		// The holder renounced with unflushed state (a failed Close flush, an
		// aborted recovery): its journal may hold records the metatable does
		// not. Freeing the directory outright would hand the next leader a
		// grant without NeedRecovery and those records would never replay.
		// Instead, lapse the lease on the spot: the next acquirer takes the
		// crashed-holder path — grace wait, then a recovery grant.
		d.expiry = m.env.Now()
		d.recovering = false
		d.clean = false
		d.prevHolder = ""
		snap, seq := m.persistLocked()
		return ReleaseResp{OK: true}, snap, seq
	}
	d.holder = ""
	d.recovering = false
	d.clean = true
	d.prevHolder = r.Client
	snap, seq := m.persistLocked()
	return ReleaseResp{OK: true}, snap, seq
}

func (m *Manager) recoveryDone(r RecoveryDoneReq, reqEpoch uint64) RecoveryDoneResp {
	m.mu.Lock()
	resp, snap, seq := m.recoveryDoneLocked(r, reqEpoch)
	m.mu.Unlock()
	m.maybePersist(snap, seq)
	return resp
}

func (m *Manager) recoveryDoneLocked(r RecoveryDoneReq, reqEpoch uint64) (RecoveryDoneResp, []byte, uint64) {
	if redirect, wait := m.ringCheckLocked(r.Dir, reqEpoch); redirect || wait {
		m.cRingRedirects.Inc()
		return RecoveryDoneResp{StaleRing: true, Ring: m.ring}, nil, 0
	}
	d := m.dirs[r.Dir]
	if d == nil || !d.recovering || d.holder != r.Client || d.recoverID != r.LeaseID {
		return RecoveryDoneResp{OK: false}, nil, 0
	}
	// Renew the lease on the leader who performed the recovery (§III-E-1).
	d.recovering = false
	d.expiry = m.env.Now() + m.period
	snap, seq := m.persistLocked()
	return RecoveryDoneResp{OK: true, Expiry: d.expiry, LeaseID: d.leaseID}, snap, seq
}

// StartGain freezes the territory this shard is about to win: nr is
// installed as the membership view, and directories that prev did not assign
// to this shard answer short waits until FinishGain. For a brand-new shard
// prev contains everything-but-me, so its whole range is frozen while the
// losing shards' HandoffReqs drain in.
func (m *Manager) StartGain(prev, nr Ring) {
	m.mu.Lock()
	p := prev
	m.ring = nr
	m.gaining = &p
	m.mu.Unlock()
}

// FinishGain unfreezes the gained territory. lost carries a suspicion record
// for every range whose transfer failed; directories in those ranges pay the
// grace stall, everything else serves from the transferred state.
func (m *Manager) FinishGain(lost []suspect) {
	m.mu.Lock()
	m.gaining = nil
	m.suspects = append(m.suspects, lost...)
	snap, seq := m.persistLocked()
	m.mu.Unlock()
	m.maybePersist(snap, seq)
}

// BeginHandoff installs nr and extracts the live grant state of every
// directory this shard loses under it, grouped by gaining shard. From the
// moment it returns, moved directories answer StaleRing redirects here; the
// extracted grants must reach their new owners (HandoffReq) or those
// directories pay the grace stall there. The second return value carries the
// suspicion records the gainers must inherit — this shard's accumulated
// suspects plus, when the shard itself restarted without full state, its own
// amnesia window.
func (m *Manager) BeginHandoff(nr Ring) (map[rpc.Addr][]DirGrant, []suspect) {
	m.mu.Lock()
	if !m.ring.IsZero() && nr.Epoch <= m.ring.Epoch {
		m.mu.Unlock()
		return nil, nil
	}
	prev := m.ring
	m.ring = nr
	moved := make(map[rpc.Addr][]DirGrant)
	n := 0
	for ino, d := range m.dirs {
		owner := nr.RouteAddr(ino)
		if owner == m.ringAddr {
			continue
		}
		delete(m.dirs, ino)
		if d.holder == "" && d.clean && d.prevHolder == "" {
			continue // default state: nothing worth shipping
		}
		moved[owner] = append(moved[owner], DirGrant{
			Dir: ino, Holder: d.holder, LeaseID: d.leaseID, Expiry: d.expiry,
			Clean: d.clean, PrevHolder: d.prevHolder,
			Recovering: d.recovering, RecoverID: d.recoverID,
		})
		n++
	}
	inherited := append([]suspect(nil), m.suspects...)
	if m.restarted {
		inherited = append(inherited, suspect{prev: prev, from: m.ringAddr, expiry: m.unknownExpiry})
	}
	m.cHandoffOut.Add(int64(n))
	snap, seq := m.persistLocked()
	m.mu.Unlock()
	m.maybePersist(snap, seq)
	return moved, inherited
}

// acceptHandoff installs grant state transferred from a losing shard. Grants
// for an older epoch than the shard's view are rejected (a delayed transfer
// from a superseded resharding); a directory that already materialized
// locally keeps the local chain.
func (m *Manager) acceptHandoff(r HandoffReq) HandoffResp {
	m.mu.Lock()
	if !m.ring.IsZero() && r.Epoch < m.ring.Epoch {
		m.mu.Unlock()
		return HandoffResp{OK: false}
	}
	accepted := 0
	for _, g := range r.Grants {
		if _, exists := m.dirs[g.Dir]; exists {
			continue
		}
		m.dirs[g.Dir] = &dirState{
			holder: g.Holder, leaseID: g.LeaseID, expiry: g.Expiry,
			clean: g.Clean, prevHolder: g.PrevHolder,
			recovering: g.Recovering, recoverID: g.RecoverID,
		}
		// Fencing continuity: a fresh chain on a transferred directory must
		// mint an id above everything the loser ever issued for it.
		if g.LeaseID > m.nextID {
			m.nextID = g.LeaseID
		}
		if g.RecoverID > m.nextID {
			m.nextID = g.RecoverID
		}
		accepted++
	}
	m.cHandoffIn.Add(int64(accepted))
	snap, seq := m.persistLocked()
	m.mu.Unlock()
	m.maybePersist(snap, seq)
	return HandoffResp{OK: true, Accepted: accepted}
}

// Tombstone converts a removed shard into a redirect-only stub: it keeps
// listening so clients with a stale ring learn the final membership instead
// of timing out, but never grants again. Its persisted snapshot is deleted —
// the live state moved to the gaining shards.
func (m *Manager) Tombstone(final Ring) {
	m.mu.Lock()
	m.tombstone = true
	m.ring = final
	m.dirs = make(map[types.Ino]*dirState)
	store, key := m.store, m.snapKey
	m.mu.Unlock()
	if store != nil {
		_ = store.Delete(key)
	}
}

// expireForTest force-lapses a directory's lease; used by tests to simulate
// the passage of time without waiting.
func (m *Manager) expireForTest(dir types.Ino) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d := m.dirs[dir]; d != nil {
		d.expiry = 0
	}
}

// Client is the client-side stub of the lease protocol. With an elastic
// cluster, Router picks the shard per directory and absorbs the ring updates
// carried by StaleRing redirects; otherwise every request goes to Mgr.
type Client struct {
	Net    *rpc.Network
	Mgr    rpc.Addr
	Self   rpc.Addr
	Router Router
}

// maxRingHops bounds how many ring redirects one logical call follows before
// surfacing a retryable error; membership changes settle in one or two.
const maxRingHops = 6

func (c *Client) target(dir types.Ino) (rpc.Addr, uint64) {
	if c.Router != nil {
		a, e := c.Router.Route(dir)
		return a, uint64(e)
	}
	return c.Mgr, 0
}

// hop stamps ctx with the routing epoch for one attempt.
func hop(ctx context.Context, epoch uint64) context.Context {
	if epoch == 0 {
		return ctx
	}
	return rpc.WithRingEpoch(ctx, epoch)
}

// stale handles one StaleRing response: install the newer ring, or — when
// the shard's ring is not actually newer (it is mid-resharding itself) —
// pause briefly so the membership change can settle.
func (c *Client) stale(ring Ring, epoch uint64) {
	if c.Router != nil && uint64(ring.Epoch) > epoch {
		c.Router.Update(ring)
		return
	}
	c.Net.Env().Sleep(time.Millisecond)
}

// Acquire requests (or extends) the lease of dir. The caller's trace
// identity in ctx rides to the manager so its handling shows as a child
// span of the acquiring operation; the router's ring epoch rides the rpc
// envelope, and stale-ring redirects are followed transparently.
func (c *Client) Acquire(ctx context.Context, dir types.Ino) (AcquireResp, error) {
	for h := 0; h < maxRingHops; h++ {
		addr, epoch := c.target(dir)
		resp, err := c.Net.CallFromCtx(hop(ctx, epoch), c.Self, addr, AcquireReq{Dir: dir, Client: c.Self})
		if err != nil {
			return AcquireResp{}, err
		}
		ar := resp.(AcquireResp)
		if !ar.StaleRing {
			return ar, nil
		}
		c.stale(ar.Ring, epoch)
	}
	return AcquireResp{}, fmt.Errorf("lease: ring redirect loop for %s: %w", dir.Short(), types.ErrTimedOut)
}

// Release gives the lease back; clean reports a full metadata flush.
func (c *Client) Release(ctx context.Context, dir types.Ino, id uint64, clean bool) error {
	for h := 0; h < maxRingHops; h++ {
		addr, epoch := c.target(dir)
		resp, err := c.Net.CallFromCtx(hop(ctx, epoch), c.Self, addr, ReleaseReq{Dir: dir, LeaseID: id, Client: c.Self, Clean: clean})
		if err != nil {
			return err
		}
		if rr, ok := resp.(ReleaseResp); !ok || !rr.StaleRing {
			return nil
		} else {
			c.stale(rr.Ring, epoch)
		}
	}
	return fmt.Errorf("lease: ring redirect loop for %s: %w", dir.Short(), types.ErrTimedOut)
}

// RecoveryDone reports a finished journal recovery and returns the renewed
// expiry.
func (c *Client) RecoveryDone(ctx context.Context, dir types.Ino, id uint64) (RecoveryDoneResp, error) {
	for h := 0; h < maxRingHops; h++ {
		addr, epoch := c.target(dir)
		resp, err := c.Net.CallFromCtx(hop(ctx, epoch), c.Self, addr, RecoveryDoneReq{Dir: dir, LeaseID: id, Client: c.Self})
		if err != nil {
			return RecoveryDoneResp{}, err
		}
		rd := resp.(RecoveryDoneResp)
		if !rd.StaleRing {
			return rd, nil
		}
		c.stale(rd.Ring, epoch)
	}
	return RecoveryDoneResp{}, fmt.Errorf("lease: ring redirect loop for %s: %w", dir.Short(), types.ErrTimedOut)
}
