package qos

import (
	"sync"
	"time"
)

// TokenBucket is a deterministic token bucket: tokens accrue at Rate per
// second up to Burst, and every refill is computed from the caller-supplied
// clock reading, so two same-seed virtual-time runs make identical decisions.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	// hint is the latest retry instant already promised to a refused
	// caller. Each refusal is hinted at least one token interval past it,
	// so outstanding hints are pairwise distinct and a backlog of refused
	// callers retries spread one token apart instead of stampeding the
	// instant one token accrues.
	hint time.Time
}

// NewTokenBucket builds a bucket that starts full.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Take consumes one token if available. On refusal it returns a retry-after
// hint pointing at a future token slot no other refused caller was promised:
// if every refusal were hinted "next token at T", a whole herd would retry at
// exactly T, stampede, and all but one would be refused again (and, under a
// virtual clock, their same-instant race would make replays diverge).
// Reserving strictly increasing slots drains a backlog of refused callers at
// exactly the admitted rate, one retry per token.
func (b *TokenBucket) Take(now time.Time) (ok bool, retryAfter time.Duration) {
	if !b.last.IsZero() && now.After(b.last) {
		b.tokens += b.rate * now.Sub(b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.rate <= 0 {
		return false, time.Second // closed bucket: arbitrary positive hint
	}
	step := time.Duration(float64(time.Second) / b.rate)
	slot := now.Add(time.Duration((1 - b.tokens) / b.rate * float64(time.Second)))
	if earliest := b.hint.Add(step); earliest.After(slot) {
		slot = earliest
	}
	after := slot.Sub(now)
	if after < time.Millisecond {
		after = time.Millisecond
	}
	b.hint = now.Add(after) // the instant this caller was told to retry at
	return false, after
}

// Tokens returns the current token count after refilling to now.
func (b *TokenBucket) Tokens(now time.Time) float64 {
	if !b.last.IsZero() && now.After(b.last) {
		b.tokens += b.rate * now.Sub(b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	return b.tokens
}

// Limits parameterizes one tenant's admission rate.
type Limits struct {
	Rate  float64 // sustained operations per second
	Burst float64 // bucket depth (instantaneous allowance)
}

// Limiter is per-tenant token-bucket admission control. Unknown tenants get
// the default limits; hostile or premium tenants can be pinned with
// SetTenant. All methods are nil-safe: a nil *Limiter admits everything.
type Limiter struct {
	mu      sync.Mutex
	def     Limits
	perT    map[string]Limits
	buckets map[string]*TokenBucket
}

// NewLimiter builds a limiter whose unknown-tenant default is def. A
// non-positive default rate disables limiting for tenants without explicit
// limits (they are always admitted).
func NewLimiter(def Limits) *Limiter {
	return &Limiter{
		def:     def,
		perT:    make(map[string]Limits),
		buckets: make(map[string]*TokenBucket),
	}
}

// SetTenant pins explicit limits for one tenant, replacing any existing
// bucket so the new limits take effect immediately.
func (l *Limiter) SetTenant(tenant string, lim Limits) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.perT[tenant] = lim
	delete(l.buckets, tenant)
}

// Admit charges one operation to tenant's bucket. Refusals carry the
// retry-after hint. Tenants whose effective rate is non-positive (and the
// empty tenant, which cannot be attributed) are always admitted.
func (l *Limiter) Admit(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil || tenant == "" {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	lim, pinned := l.perT[tenant]
	if !pinned {
		lim = l.def
	}
	if lim.Rate <= 0 {
		return true, 0
	}
	b := l.buckets[tenant]
	if b == nil {
		b = NewTokenBucket(lim.Rate, lim.Burst)
		l.buckets[tenant] = b
	}
	return b.Take(now)
}
