package qos

import (
	"context"
	"testing"
	"time"
)

func at(ms int64) time.Time { return time.Unix(0, ms*int64(time.Millisecond)) }

// TestTokenBucketDeterministic: two buckets fed the identical timestamp
// sequence make identical decisions with identical hints — the property that
// lets admission decisions fold into a replayable fingerprint.
func TestTokenBucketDeterministic(t *testing.T) {
	mk := func() []string {
		b := NewTokenBucket(100, 4)
		var out []string
		for i := int64(0); i < 200; i++ {
			ok, after := b.Take(at(i * 3))
			out = append(out, time.Duration(after).String()+map[bool]string{true: "+", false: "-"}[ok])
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestTokenBucketBurstAndRefill: the bucket starts full, drains to refusal,
// and refills at the configured rate up to the burst cap.
func TestTokenBucketBurstAndRefill(t *testing.T) {
	b := NewTokenBucket(100, 4) // 1 token / 10ms
	now := at(0)
	for i := 0; i < 4; i++ {
		if ok, _ := b.Take(now); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	if ok, _ := b.Take(now); ok {
		t.Fatal("empty bucket granted a token")
	}
	if ok, _ := b.Take(at(10)); !ok { // one token accrued
		t.Fatal("refilled token refused")
	}
	// A long idle period caps at burst, not rate×elapsed.
	b2 := NewTokenBucket(100, 4)
	for i := 0; i < 4; i++ {
		b2.Take(at(0))
	}
	for i := 0; i < 4; i++ {
		if ok, _ := b2.Take(at(10_000)); !ok {
			t.Fatalf("token %d after idle refused", i)
		}
	}
	if ok, _ := b2.Take(at(10_000)); ok {
		t.Fatal("burst cap exceeded after idle")
	}
}

// TestTokenBucketSpreadsHints: a herd of same-window refusals is hinted at
// strictly increasing future slots, one token interval apart — not all at the
// instant the next token accrues. This is both the anti-stampede behavior and
// what keeps virtual-clock replays deterministic (no two hinted callers wake
// at the same instant).
func TestTokenBucketSpreadsHints(t *testing.T) {
	b := NewTokenBucket(100, 1) // 10ms per token
	b.Take(at(0))               // drain the single burst token
	var wakes []time.Time
	for i := 0; i < 8; i++ {
		now := at(int64(i)) // refusals 1ms apart
		ok, after := b.Take(now)
		if ok {
			t.Fatalf("refusal %d unexpectedly granted", i)
		}
		wakes = append(wakes, now.Add(after))
	}
	for i := 1; i < len(wakes); i++ {
		if !wakes[i].After(wakes[i-1]) {
			t.Fatalf("hint %d not strictly after hint %d: %v vs %v", i, i-1, wakes[i], wakes[i-1])
		}
		if got := wakes[i].Sub(wakes[i-1]); got < 9*time.Millisecond {
			t.Fatalf("hints %d/%d only %v apart; want ≥ one token interval", i-1, i, got)
		}
	}
	// The backlog drains at the admitted rate: each hinted caller retrying at
	// its slot gets exactly its token.
	for i, w := range wakes {
		if ok, after := b.Take(w); !ok {
			t.Fatalf("caller %d refused at its hinted slot (retry-after %v)", i, after)
		}
	}
}

// TestLimiterPerTenant: tenants get independent buckets, SetTenant overrides
// the default, and the empty tenant (plus nil limiter) always admits.
func TestLimiterPerTenant(t *testing.T) {
	l := NewLimiter(Limits{Rate: 100, Burst: 1})
	l.SetTenant("premium", Limits{Rate: 100, Burst: 8})
	l.SetTenant("open", Limits{}) // non-positive rate: never limited
	now := at(0)
	if ok, _ := l.Admit("a", now); !ok {
		t.Fatal("tenant a's burst token refused")
	}
	if ok, _ := l.Admit("a", now); ok {
		t.Fatal("tenant a over burst admitted")
	}
	if ok, _ := l.Admit("b", now); !ok {
		t.Fatal("tenant b throttled by tenant a's bucket")
	}
	for i := 0; i < 8; i++ {
		if ok, _ := l.Admit("premium", now); !ok {
			t.Fatalf("premium token %d refused", i)
		}
	}
	for i := 0; i < 100; i++ {
		if ok, _ := l.Admit("open", now); !ok {
			t.Fatal("zero-rate tenant must never be limited")
		}
		if ok, _ := l.Admit("", now); !ok {
			t.Fatal("empty tenant must always admit")
		}
	}
	var nilL *Limiter
	if ok, _ := nilL.Admit("a", now); !ok {
		t.Fatal("nil limiter must admit")
	}
}

// TestBudgetSpendAndDeadline: the shared pool admits exactly n retries, and a
// deadline stops spending even with tokens left.
func TestBudgetSpendAndDeadline(t *testing.T) {
	b := NewBudget(3)
	for i := 0; i < 3; i++ {
		if !b.TrySpend(at(0)) {
			t.Fatalf("retry %d refused with budget left", i)
		}
	}
	if b.TrySpend(at(0)) {
		t.Fatal("exhausted budget admitted a retry")
	}
	d := NewBudget(10)
	d.SetDeadline(at(5))
	if !d.TrySpend(at(4)) {
		t.Fatal("pre-deadline retry refused")
	}
	if d.TrySpend(at(5)) {
		t.Fatal("at-deadline retry admitted")
	}
	var nilB *Budget
	if !nilB.TrySpend(at(0)) {
		t.Fatal("nil budget must admit")
	}
}

// TestBudgetWireRoundTrip: the envelope encoding preserves "no budget" (the
// sentinel) and rehydrates real counts, with zero meaning exhausted→nil.
func TestBudgetWireRoundTrip(t *testing.T) {
	if Wire(nil) != NoBudget {
		t.Fatalf("Wire(nil) = %d, want sentinel", Wire(nil))
	}
	if BudgetFromWire(NoBudget) != nil || BudgetFromWire(0) != nil || BudgetFromWire(-1) != nil {
		t.Fatal("sentinel/zero/negative must rehydrate to nil")
	}
	b := NewBudget(5)
	b.TrySpend(at(0))
	r := BudgetFromWire(Wire(b))
	if r == nil || r.Remaining() != 4 {
		t.Fatalf("round-trip lost the count: %v", r.Remaining())
	}
	ctx := WithBudget(context.Background(), b)
	if BudgetFrom(ctx) != b {
		t.Fatal("context round-trip lost the budget")
	}
	if RemainingFrom(context.Background()) != NoBudget {
		t.Fatal("budget-free context must render the sentinel")
	}
}

// TestRetryBudgetRatio: retries are capped at burst + ratio×attempts.
func TestRetryBudgetRatio(t *testing.T) {
	b := NewRetryBudget(0.1, 2)
	if !b.Allow() || !b.Allow() {
		t.Fatal("burst retries refused")
	}
	if b.Allow() {
		t.Fatal("retry beyond burst admitted with zero attempts")
	}
	for i := 0; i < 10; i++ {
		b.OnAttempt()
	}
	if !b.Allow() { // 2 + 0.1*10 = 3
		t.Fatal("earned retry refused")
	}
	if b.Allow() {
		t.Fatal("retry beyond earned budget admitted")
	}
	att, ret := b.Stats()
	if att != 10 || ret != 3 {
		t.Fatalf("stats = (%d, %d), want (10, 3)", att, ret)
	}
}

// TestBreakerTransitions walks the classic state machine on a virtual clock:
// closed trips at the threshold, open refuses until the probe slot, a failed
// probe re-opens with doubled cooldown, a successful probe closes.
func TestBreakerTransitions(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 100 * time.Millisecond, Seed: 7})
	now := at(0)
	for i := 0; i < 3; i++ {
		if ok, _ := b.Allow(now); !ok {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.OnFailure(now)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, b.State())
	}
	ok, after := b.Allow(now)
	if ok || after <= 0 {
		t.Fatalf("open breaker allowed (after=%v)", after)
	}
	// The jittered cooldown is at most 1.25×; step past it to the probe slot.
	probeAt := now.Add(after)
	if ok, _ := b.Allow(probeAt); !ok {
		t.Fatal("probe slot refused")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state at probe = %v, want half-open", b.State())
	}
	if ok, _ := b.Allow(probeAt); ok {
		t.Fatal("second concurrent probe admitted")
	}
	b.OnFailure(probeAt) // failed probe: re-open, doubled cooldown
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	_, after2 := b.Allow(probeAt)
	if after2 < after { // doubled (modulo jitter ≥ 0) cooldown
		t.Fatalf("cooldown did not grow: %v then %v", after, after2)
	}
	probe2 := probeAt.Add(after2)
	if ok, _ := b.Allow(probe2); !ok {
		t.Fatal("second probe slot refused")
	}
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	var nilB *Breaker
	if ok, _ := nilB.Allow(now); !ok || nilB.State() != BreakerClosed {
		t.Fatal("nil breaker must allow")
	}
}

// TestBreakerSeededSchedule: same seed, same probe schedule — the breaker's
// jitter must not break fingerprint replay.
func TestBreakerSeededSchedule(t *testing.T) {
	sched := func(seed int64) []time.Duration {
		b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 50 * time.Millisecond, Seed: seed})
		var out []time.Duration
		now := at(0)
		for i := 0; i < 6; i++ {
			b.OnFailure(now)
			_, after := b.Allow(now)
			out = append(out, after)
			now = now.Add(after)
			b.Allow(now) // take the probe (moves to half-open)
		}
		return out
	}
	a, b := sched(42), sched(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestBrownoutLadder: cheap ops never shed; expensive ops shed first; hints
// grow with overload depth; the ladder never mutates (zero value usable
// concurrently).
func TestBrownoutLadder(t *testing.T) {
	l := &BrownoutLadder{}
	if shed, _ := l.Sheds(100, CostCheap); shed {
		t.Fatal("cheap op shed")
	}
	if shed, _ := l.Sheds(0.5, CostExpensive); shed {
		t.Fatal("expensive op shed below threshold")
	}
	shedE, hintE := l.Sheds(1, CostExpensive)
	if !shedE || hintE <= 0 {
		t.Fatalf("expensive op not shed at pressure 1 (hint %v)", hintE)
	}
	if shed, _ := l.Sheds(2, CostNormal); shed {
		t.Fatal("normal op shed below its threshold")
	}
	if shed, _ := l.Sheds(3, CostNormal); !shed {
		t.Fatal("normal op not shed at pressure 3")
	}
	_, deep := l.Sheds(4, CostExpensive)
	if deep <= hintE {
		t.Fatalf("hint did not grow with depth: %v then %v", hintE, deep)
	}
	_, capped := l.Sheds(1000, CostExpensive)
	if capped != 8*10*time.Millisecond {
		t.Fatalf("depth cap: hint = %v, want 80ms", capped)
	}
	if *l != (BrownoutLadder{}) {
		t.Fatalf("Sheds mutated the ladder: %+v", *l)
	}
	var nilL *BrownoutLadder
	if shed, _ := nilL.Sheds(100, CostExpensive); shed {
		t.Fatal("nil ladder shed")
	}
}
