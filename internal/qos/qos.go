// Package qos is ArkFS's overload-protection toolkit: per-tenant token-bucket
// admission control, shared per-operation retry budgets, a circuit breaker for
// object-store round-trips, and the brownout ladder that sheds expensive
// operations before cheap ones when the journal pipeline backs up.
//
// Two properties shape the design, mirroring the obs package:
//
//   - Determinism. Nothing in this package reads the wall clock or a global
//     RNG. Every decision is a pure function of caller-supplied timestamps
//     (the sim.Env virtual clock in benchmarks and chaos runs) and seeded
//     state, so a same-seed run replays every admit/shed decision exactly and
//     the qos.* counters fold into the deterministic metrics fingerprint.
//   - Nil is the no-op sink. A nil *Limiter, *Budget, *RetryBudget, or
//     *Breaker admits everything, so call sites never branch on "qos on?".
//
// The package is a leaf: it depends only on the standard library, so rpc,
// core, lease, and objstore can all import it without cycles.
package qos

import (
	"context"
	"sync/atomic"
	"time"
)

// Budget is the shared per-operation retry budget: one pool of retry tokens
// (plus an optional deadline) that every retry loop under an operation —
// op-level retries, leader rediscovery, lease acquires — draws from, so
// nested loops cannot multiply attempts. The first attempt of anything is
// free; only retries spend. All methods are nil-safe: a nil *Budget always
// admits (the un-budgeted legacy behavior).
type Budget struct {
	remaining atomic.Int64
	deadline  atomic.Int64 // unix nanos; 0 = none
}

// NewBudget creates a budget with n retry tokens.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.remaining.Store(int64(n))
	return b
}

// SetDeadline caps the budget in time: TrySpend calls at or after t fail even
// if tokens remain.
func (b *Budget) SetDeadline(t time.Time) {
	if b == nil {
		return
	}
	b.deadline.Store(t.UnixNano())
}

// TrySpend consumes one retry token, reporting whether the retry may proceed.
// now is the caller's clock reading (virtual under sim).
func (b *Budget) TrySpend(now time.Time) bool {
	if b == nil {
		return true
	}
	if d := b.deadline.Load(); d != 0 && now.UnixNano() >= d {
		return false
	}
	for {
		r := b.remaining.Load()
		if r <= 0 {
			return false
		}
		if b.remaining.CompareAndSwap(r, r-1) {
			return true
		}
	}
}

// Remaining returns the retry tokens left (a nil budget reports a large
// sentinel, matching its always-admit behavior).
func (b *Budget) Remaining() int {
	if b == nil {
		return int(unbudgeted)
	}
	r := b.remaining.Load()
	if r < 0 {
		r = 0
	}
	return int(r)
}

// NoBudget is the wire value meaning "no budget attached": large enough
// that a derived server-side budget never binds before the client's own
// loops do.
const NoBudget = int64(1) << 30

const unbudgeted = NoBudget

// Wire renders a budget for the rpc envelope: the token count a remote
// server may in turn spend on its own nested retries (NoBudget when nil).
func Wire(b *Budget) int64 {
	if b == nil {
		return NoBudget
	}
	return int64(b.Remaining())
}

// budgetKey carries a *Budget in a context.Context.
type budgetKey struct{}

// WithBudget attaches the operation's shared retry budget to ctx.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom extracts the operation's retry budget (nil when none attached).
func BudgetFrom(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}

// RemainingFrom renders ctx's budget for the rpc envelope (NoBudget when no
// budget is attached).
func RemainingFrom(ctx context.Context) int64 {
	return Wire(BudgetFrom(ctx))
}

// BudgetFromWire rehydrates a wire token count into a server-side budget.
// The sentinel (or anything above it) means the caller carried no budget and
// rehydrates to nil, keeping the nil-admits-everything contract end to end.
// Non-positive counts also rehydrate to nil: zero is both gob's
// missing-field default and an already-exhausted budget, and in either case
// the calling side's own loops have stopped retrying.
func BudgetFromWire(n int64) *Budget {
	if n <= 0 || n >= unbudgeted {
		return nil
	}
	b := &Budget{}
	b.remaining.Store(n)
	return b
}

// RetryBudget is a global (per-client, not per-op) retry-rate budget for
// context-free layers like the object-store retry path: retries are allowed
// while the retries-so-far stay under Burst + Ratio×attempts-so-far, the
// SRE-style "retries may add at most Ratio of load" rule. Deterministic by
// construction — no clock involved — and nil-safe (nil always allows).
type RetryBudget struct {
	attempts atomic.Int64
	retries  atomic.Int64
	ratio    float64
	burst    int64
}

// NewRetryBudget builds a retry-rate budget. ratio is the steady-state
// retries-per-attempt ceiling (e.g. 0.1); burst is the allowance floor so
// cold starts and small runs can still retry.
func NewRetryBudget(ratio float64, burst int) *RetryBudget {
	return &RetryBudget{ratio: ratio, burst: int64(burst)}
}

// OnAttempt records one first attempt (not a retry).
func (b *RetryBudget) OnAttempt() {
	if b != nil {
		b.attempts.Add(1)
	}
}

// Allow reports whether another retry fits the budget, consuming it when so.
func (b *RetryBudget) Allow() bool {
	if b == nil {
		return true
	}
	for {
		r := b.retries.Load()
		limit := b.burst + int64(b.ratio*float64(b.attempts.Load()))
		if r >= limit {
			return false
		}
		if b.retries.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Stats returns (attempts, retries) recorded so far.
func (b *RetryBudget) Stats() (attempts, retries int64) {
	if b == nil {
		return 0, 0
	}
	return b.attempts.Load(), b.retries.Load()
}
