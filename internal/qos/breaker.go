package qos

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerState is one of the three classic circuit-breaker states.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fast-fails everything until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe; its outcome decides the
	// next state.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a Breaker. The zero value is filled with the
// defaults noted on each field.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// (default 5).
	Threshold int
	// Cooldown is the initial open interval before the half-open probe
	// (default 100ms). Re-tripping from half-open doubles it, capped at
	// MaxCooldown.
	Cooldown time.Duration
	// MaxCooldown caps the exponential open interval (default 5s).
	MaxCooldown time.Duration
	// Seed feeds the deterministic probe jitter: each open interval is
	// stretched by up to 25% from a seeded stream, so a fleet of breakers
	// tripped by one outage does not probe in lockstep, yet a same-seed run
	// replays the exact probe schedule.
	Seed int64
}

func (c *BreakerConfig) fill() {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 100 * time.Millisecond
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 5 * time.Second
	}
}

// Breaker is a deterministic closed/open/half-open circuit breaker. All
// timing flows through caller-supplied clock readings; all jitter comes from
// the seeded stream in BreakerConfig. Nil-safe: a nil *Breaker always allows
// and never trips.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	rng      *rand.Rand
	state    BreakerState
	fails    int           // consecutive failures while closed
	until    time.Time     // open until (probe time)
	cooldown time.Duration // current open interval (doubles on re-trip)
	probing  bool          // a half-open probe is in flight
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.fill()
	return &Breaker{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cooldown: cfg.Cooldown,
	}
}

// Allow reports whether a round-trip may proceed. While open it refuses with
// the time remaining until the probe slot; in half-open it admits exactly one
// probe and refuses the rest with a one-cooldown hint.
func (b *Breaker) Allow(now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		if now.Before(b.until) {
			return false, b.until.Sub(now)
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, 0
	case BreakerHalfOpen:
		if b.probing {
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
	return true, 0
}

// OnSuccess records a successful round-trip: closed resets the failure
// streak; a half-open probe success closes the breaker and resets the
// cooldown ladder.
func (b *Breaker) OnSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.fails = 0
		b.probing = false
		b.cooldown = b.cfg.Cooldown
	}
}

// OnFailure records a failed round-trip. Closed trips to open at Threshold
// consecutive failures; a failed half-open probe re-opens with a doubled
// (capped) cooldown. The open interval carries deterministic seeded jitter.
func (b *Breaker) OnFailure(now time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.trip(now)
		}
	case BreakerHalfOpen:
		b.probing = false
		b.cooldown *= 2
		if b.cooldown > b.cfg.MaxCooldown {
			b.cooldown = b.cfg.MaxCooldown
		}
		b.trip(now)
	}
}

// trip moves to open until now + cooldown + jitter. Caller holds b.mu.
func (b *Breaker) trip(now time.Time) {
	b.state = BreakerOpen
	b.fails = 0
	jitter := time.Duration(b.rng.Int63n(int64(b.cooldown)/4 + 1))
	b.until = now.Add(b.cooldown + jitter)
}

// State returns the current state (closed for a nil breaker).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
