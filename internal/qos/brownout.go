package qos

import "time"

// OpCost classifies operations for the brownout ladder: under pressure the
// leader sheds expensive operations (readdir, cross-directory rename with its
// 2PC round) before normal mutations, and never sheds cheap reads — a
// stat-heavy monitoring loop keeps working while the journal catches up.
type OpCost int

const (
	// CostCheap: stat, lookup, open-for-read. Never shed by brownout.
	CostCheap OpCost = iota
	// CostNormal: create, unlink, setattr, symlink — single-journal-record
	// mutations.
	CostNormal
	// CostExpensive: readdir (full dentry scan) and rename (2PC, two
	// leaders, decision record).
	CostExpensive
)

// BrownoutLadder maps journal-pipeline pressure to the op classes shed.
// Pressure is a unitless backlog ratio (1.0 = the pipeline's in-flight window
// is exactly full); the zero value is filled with the noted defaults.
type BrownoutLadder struct {
	// Expensive is the pressure at which CostExpensive ops shed (default 1).
	Expensive float64
	// Normal is the pressure at which CostNormal ops also shed (default 3):
	// by then even single-record mutations would only deepen the backlog.
	Normal float64
	// RetryAfter is the hint handed to shed clients (default 10ms) — roughly
	// the time one pipeline window takes to drain, scaled by overload depth
	// at the call site.
	RetryAfter time.Duration
}

// Sheds reports whether an op of class c is shed at pressure p, and the
// retry-after hint when so. Cheap ops are never shed. Sheds never mutates the
// ladder (defaults are resolved per call), so one ladder value is safe to
// share across concurrent server workers.
func (l *BrownoutLadder) Sheds(p float64, c OpCost) (bool, time.Duration) {
	if l == nil || c == CostCheap {
		return false, 0
	}
	threshold := l.Normal
	if c == CostExpensive {
		threshold = l.Expensive
		if threshold <= 0 {
			threshold = 1
		}
	} else if threshold <= 0 {
		threshold = 3
	}
	if p < threshold {
		return false, 0
	}
	after := l.RetryAfter
	if after <= 0 {
		after = 10 * time.Millisecond
	}
	// Deeper overload ⇒ longer hint, so pushback spreads retries out rather
	// than synchronizing them at one horizon.
	depth := p / threshold
	if depth > 8 {
		depth = 8
	}
	return true, time.Duration(float64(after) * depth)
}
