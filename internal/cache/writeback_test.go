package cache

import (
	"bytes"
	"sync"
	"testing"

	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// faultCacheSetup builds a cache over a FaultStore-backed translator.
func faultCacheSetup(t *testing.T, chunk int64, maxEntries int) (*Cache, *prt.Translator, *objstore.FaultStore, sim.Env) {
	t.Helper()
	env := sim.NewRealEnv()
	t.Cleanup(env.Shutdown)
	fs := objstore.NewFaultStore(objstore.NewMemStore())
	tr := prt.New(fs, chunk)
	c := New(env, tr, Config{EntrySize: chunk, MaxEntries: maxEntries})
	return c, tr, fs, env
}

// chunkPattern fills one chunk with a distinct per-index byte pattern.
func chunkPattern(idx int, size int64) []byte {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(idx*31 + i)
	}
	return data
}

// Regression: a transient PUT failure during LRU eviction write-back must not
// lose the chunk. The entry keeps its dirty bit and stays resident, and the
// next Flush lands the bytes (previously the dirty bit was cleared before the
// PUT and the error dropped, silently losing the data).
func TestEvictionWritebackFailurePreservesData(t *testing.T) {
	const chunk = 64
	c, tr, fs, _ := faultCacheSetup(t, chunk, 2)
	ino := types.NewInoSource(1).Next()
	for idx := 0; idx < 2; idx++ {
		if err := c.Write(ino, chunkPattern(idx, chunk), int64(idx)*chunk); err != nil {
			t.Fatal(err)
		}
	}
	// The next write overflows MaxEntries and evicts chunk 0 (LRU), whose
	// write-back PUT fails transiently.
	fs.FailNext("d:", 1)
	if err := c.Write(ino, chunkPattern(2, chunk), 2*chunk); err != nil {
		t.Fatal(err)
	}
	if got := c.Stat().WritebackErrors.Load(); got != 1 {
		t.Fatalf("WritebackErrors = %d, want 1", got)
	}
	if !c.Dirty(ino) {
		t.Fatal("entry lost its dirty bit after a failed eviction write-back")
	}
	// The store must not have the chunk yet; the cache still does.
	if _, err := fs.Get(prt.DataKey(ino, 0)); err == nil {
		t.Fatal("failed PUT should not have landed")
	}
	// The fault was transient: the next Flush retries and persists everything.
	if err := c.Flush(ino); err != nil {
		t.Fatalf("Flush after transient fault: %v", err)
	}
	if c.Dirty(ino) {
		t.Fatal("Dirty after successful flush")
	}
	got := make([]byte, 3*chunk)
	if _, err := tr.ReadAt(ino, got, 0, 3*chunk); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 3; idx++ {
		if !bytes.Equal(got[idx*chunk:(idx+1)*chunk], chunkPattern(idx, chunk)) {
			t.Fatalf("chunk %d lost or corrupted after eviction failure + flush", idx)
		}
	}
}

// Regression: a persistent write-back failure must surface as a Flush error
// instead of being dropped.
func TestEvictionWritebackFailureSurfacesAtFlush(t *testing.T) {
	const chunk = 64
	c, _, fs, _ := faultCacheSetup(t, chunk, 2)
	ino := types.NewInoSource(2).Next()
	for idx := 0; idx < 2; idx++ {
		if err := c.Write(ino, chunkPattern(idx, chunk), int64(idx)*chunk); err != nil {
			t.Fatal(err)
		}
	}
	fs.FailNext("d:", 100) // persistent fault
	if err := c.Write(ino, chunkPattern(2, chunk), 2*chunk); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ino); err == nil {
		t.Fatal("Flush reported success while the store rejected every PUT")
	}
	if !c.Dirty(ino) {
		t.Fatal("dirty bit dropped by a failed Flush")
	}
	// Clear the fault; everything still recovers.
	fs.FailNext("", 0)
	if err := c.Flush(ino); err != nil {
		t.Fatal(err)
	}
	if c.Dirty(ino) {
		t.Fatal("Dirty after recovery flush")
	}
}

// gateStore parks the first PUT of gateKey between reading the first and
// second half of the value, exposing torn flushes: if the caller aliased the
// cache entry's buffer, a concurrent Write lands in the second half.
type gateStore struct {
	objstore.Store
	gateKey string
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateStore) Put(key string, data []byte) error {
	if key == g.gateKey {
		var gated bool
		g.once.Do(func() { gated = true })
		if gated {
			half := append([]byte(nil), data[:len(data)/2]...)
			close(g.entered)
			<-g.release
			rest := append([]byte(nil), data[len(data)/2:]...)
			return g.Store.Put(key, append(half, rest...))
		}
	}
	return g.Store.Put(key, data)
}

// Regression: Flush must snapshot dirty bytes under the lock. Previously it
// captured e.data by reference and PUT it with the cache unlocked, so a
// concurrent Write to the same chunk produced a half-old half-new object.
func TestFlushSnapshotsAgainstConcurrentWrite(t *testing.T) {
	const chunk = 64
	env := sim.NewRealEnv()
	t.Cleanup(env.Shutdown)
	ino := types.NewInoSource(3).Next()
	gs := &gateStore{
		Store:   objstore.NewMemStore(),
		gateKey: prt.DataKey(ino, 0),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	tr := prt.New(gs, chunk)
	c := New(env, tr, Config{EntrySize: chunk, MaxEntries: 100})

	old := bytes.Repeat([]byte{0xAA}, chunk)
	if err := c.Write(ino, old, 0); err != nil {
		t.Fatal(err)
	}
	flushDone := make(chan error, 1)
	env.Go(func() { flushDone <- c.Flush(ino) })
	<-gs.entered // the flush PUT is mid-value
	niu := bytes.Repeat([]byte{0xBB}, chunk)
	if err := c.Write(ino, niu, 0); err != nil {
		t.Fatal(err)
	}
	close(gs.release)
	if err := <-flushDone; err != nil {
		t.Fatal(err)
	}
	raw, err := gs.Get(prt.DataKey(ino, 0))
	if err != nil {
		t.Fatal(err)
	}
	stored, err := wire.Unseal(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range stored {
		if b != stored[0] {
			t.Fatalf("torn object: byte %d = %#x, byte 0 = %#x", i, b, stored[0])
		}
	}
	// The concurrent Write must still be flushable: clearing its dirty bit
	// based on the pre-write snapshot would lose the 0xBB version.
	if !c.Dirty(ino) {
		t.Fatal("dirty bit of the concurrent write was cleared by the stale flush")
	}
	if err := c.Flush(ino); err != nil {
		t.Fatal(err)
	}
	raw, err = gs.Get(prt.DataKey(ino, 0))
	if err != nil {
		t.Fatal(err)
	}
	stored, err = wire.Unseal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored, niu) {
		t.Fatal("final flush lost the concurrent write")
	}
}

// Race-detector fodder: hammer Write against Flush and eviction on the same
// chunks. With the aliasing bug, `go test -race` reports a write race between
// the flusher's PUT and Write's copy-in.
func TestConcurrentWriteFlushEvictNoRace(t *testing.T) {
	const chunk = 128
	c, _, _, env := faultCacheSetup(t, chunk, 4)
	ino := types.NewInoSource(4).Next()
	done := make(chan struct{})
	env.Go(func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = c.Flush(ino)
		}
	})
	buf := make([]byte, chunk)
	for i := 0; i < 400; i++ {
		for j := range buf {
			buf[j] = byte(i + j)
		}
		// 8 chunks over a 4-entry cache: steady eviction traffic.
		if err := c.Write(ino, buf, int64(i%8)*chunk); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := c.Flush(ino); err != nil {
		t.Fatal(err)
	}
	if c.Dirty(ino) {
		t.Fatal("Dirty after final flush")
	}
}
