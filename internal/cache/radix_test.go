package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRadixBasic(t *testing.T) {
	var r radix[int]
	if _, ok := r.Get(0); ok {
		t.Fatal("empty tree returned a value")
	}
	v1, v2 := 10, 20
	r.Insert(0, &v1)
	r.Insert(1<<30, &v2) // forces height growth
	if got, ok := r.Get(0); !ok || *got != 10 {
		t.Fatalf("Get(0) = %v, %v", got, ok)
	}
	if got, ok := r.Get(1 << 30); !ok || *got != 20 {
		t.Fatalf("Get(big) = %v, %v", got, ok)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Replace.
	v3 := 30
	r.Insert(0, &v3)
	if got, _ := r.Get(0); *got != 30 {
		t.Fatal("Insert did not replace")
	}
	if r.Len() != 2 {
		t.Fatalf("Len after replace = %d", r.Len())
	}
	// Delete.
	if !r.Delete(0) {
		t.Fatal("Delete(0) failed")
	}
	if r.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := r.Get(0); ok {
		t.Fatal("deleted key still present")
	}
	if r.Len() != 1 {
		t.Fatalf("Len after delete = %d", r.Len())
	}
}

func TestRadixRangeOrdered(t *testing.T) {
	var r radix[int]
	idxs := []uint64{5, 1, 1 << 20, 64, 63, 4096, 0}
	for i := range idxs {
		v := int(idxs[i])
		r.Insert(idxs[i], &v)
	}
	var got []uint64
	r.Range(func(idx uint64, v *int) bool {
		got = append(got, idx)
		if uint64(*v) != idx {
			t.Fatalf("value mismatch at %d", idx)
		}
		return true
	})
	want := []uint64{0, 1, 5, 63, 64, 4096, 1 << 20}
	if len(got) != len(want) {
		t.Fatalf("Range visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	r.Range(func(idx uint64, v *int) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestRadixHugeIndexes(t *testing.T) {
	var r radix[int]
	v := 1
	max := ^uint64(0)
	r.Insert(max, &v)
	if got, ok := r.Get(max); !ok || *got != 1 {
		t.Fatalf("max index: %v %v", got, ok)
	}
	if !r.Delete(max) {
		t.Fatal("delete max failed")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d", r.Len())
	}
}

// Property: the tree behaves identically to a map under random ops.
func TestRadixMatchesMapQuick(t *testing.T) {
	type op struct {
		Kind uint8
		Idx  uint32
	}
	f := func(ops []op) bool {
		var r radix[uint32]
		model := map[uint64]uint32{}
		for _, o := range ops {
			idx := uint64(o.Idx) % 100000
			switch o.Kind % 3 {
			case 0:
				v := o.Idx
				r.Insert(idx, &v)
				model[idx] = o.Idx
			case 1:
				got, ok := r.Get(idx)
				want, wok := model[idx]
				if ok != wok {
					return false
				}
				if ok && *got != want {
					return false
				}
			case 2:
				if r.Delete(idx) != (func() bool { _, ok := model[idx]; return ok })() {
					return false
				}
				delete(model, idx)
			}
		}
		if r.Len() != len(model) {
			return false
		}
		// Full sweep comparison.
		seen := 0
		okAll := true
		r.Range(func(idx uint64, v *uint32) bool {
			seen++
			if model[idx] != *v {
				okAll = false
				return false
			}
			return true
		})
		return okAll && seen == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRadixGet(b *testing.B) {
	var r radix[int]
	for i := 0; i < 4096; i++ {
		v := i
		r.Insert(uint64(i), &v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Get(uint64(i % 4096))
	}
}
