package cache

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// Config tunes the data object cache.
type Config struct {
	// EntrySize is the cache entry granularity; it must equal the PRT chunk
	// size so one entry maps to one data object (2 MiB by default).
	EntrySize int64
	// MaxEntries bounds the cache; LRU eviction writes dirty entries back.
	MaxEntries int
	// MaxReadahead bounds the sequential read-ahead window (8 MiB default,
	// as in CephFS; the paper's goofys comparison raises it to 400 MiB).
	MaxReadahead int64
	// FlushParallelism bounds the concurrent write-backs one Flush issues
	// (the write-back thread pool); default 8.
	FlushParallelism int
	// PrefetchParallelism bounds in-flight read-ahead fetches (the FUSE
	// daemon's read-ahead thread pool); default 64.
	PrefetchParallelism int
	// Cost charges CPU time for memory copies in simulation.
	Cost sim.CostModel
}

// DefaultConfig mirrors the paper's defaults.
func DefaultConfig() Config {
	return Config{EntrySize: 2 << 20, MaxEntries: 1024, MaxReadahead: 8 << 20}
}

// Stats counts cache activity.
type Stats struct {
	Hits, Misses, Readaheads, Writebacks, Evictions atomic.Int64
	// WritebackErrors counts failed eviction write-backs; the entry stays
	// resident and dirty, and the next Flush retries and reports the error.
	WritebackErrors atomic.Int64
}

// Cache is one client's user-level data object cache. It is write-back: WRITE
// dirties entries; Flush (the fsync path) and evictions write them to the
// object store through the PRT.
type Cache struct {
	env sim.Env
	tr  *prt.Translator
	cfg Config

	mu          sync.Mutex
	files       map[types.Ino]*fileCache
	lru         *list.List // *entry; front = most recent
	prefetchSem *sim.Chan[struct{}]
	// flushLocks serialize Flush per file: a lease recall must wait for any
	// in-flight background write-back, or its PUTs could land after a
	// subsequent truncate/rewrite and resurrect stale chunks.
	flushLocks map[types.Ino]*sim.Mutex
	stats      Stats
}

// fileCache is the per-file cache state.
type fileCache struct {
	ino  types.Ino
	tree radix[entry]

	// Read-ahead state (paper §III-D): window grows while reads stay
	// sequential, and jumps to the maximum when reading starts at offset 0.
	raNextOff int64 // next sequential offset expected
	raWindow  int64 // current window size in bytes
	raEdge    int64 // offset up to which prefetches have been issued
}

// entry is one cached data object.
type entry struct {
	ino     types.Ino
	idx     uint64
	data    []byte // valid prefix of the chunk
	dirty   bool
	ver     uint64              // bumped by every mutation; write-backs detect concurrent writes
	loading *sim.Chan[struct{}] // non-nil while a fetch is in flight; Close = ready
	wb      *sim.Chan[struct{}] // non-nil while an eviction write-back is in flight; Close = done
	lruElem *list.Element
}

// New creates a cache over the translator. The entry size is forced to the
// translator's chunk size.
func New(env sim.Env, tr *prt.Translator, cfg Config) *Cache {
	if cfg.EntrySize <= 0 || cfg.EntrySize != tr.ChunkSize() {
		cfg.EntrySize = tr.ChunkSize()
	}
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1024
	}
	if cfg.MaxReadahead < 0 {
		cfg.MaxReadahead = 0
	}
	if cfg.FlushParallelism <= 0 {
		cfg.FlushParallelism = 8
	}
	if cfg.PrefetchParallelism <= 0 {
		cfg.PrefetchParallelism = 64
	}
	c := &Cache{
		env: env, tr: tr, cfg: cfg,
		files:      make(map[types.Ino]*fileCache),
		lru:        list.New(),
		flushLocks: make(map[types.Ino]*sim.Mutex),
	}
	c.prefetchSem = sim.NewChan[struct{}](env)
	for i := 0; i < cfg.PrefetchParallelism; i++ {
		c.prefetchSem.Send(struct{}{})
	}
	return c
}

// Stat returns the cache counters.
func (c *Cache) Stat() *Stats { return &c.stats }

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

func (c *Cache) file(ino types.Ino) *fileCache {
	fc := c.files[ino]
	if fc == nil {
		fc = &fileCache{ino: ino}
		c.files[ino] = fc
	}
	return fc
}

// Read copies file bytes [off, off+len(buf)) into buf through the cache,
// returning the bytes read (clipped to size, the caller-tracked file size).
// Sequential access triggers asynchronous read-ahead.
func (c *Cache) Read(ino types.Ino, buf []byte, off, size int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("cache: negative offset: %w", types.ErrInval)
	}
	if off >= size {
		return 0, nil
	}
	if max := size - off; int64(len(buf)) > max {
		buf = buf[:max]
	}
	c.readahead(ino, off, int64(len(buf)), size)
	read := 0
	for read < len(buf) {
		pos := off + int64(read)
		idx := uint64(pos / c.cfg.EntrySize)
		inOff := pos % c.cfg.EntrySize
		want := int64(len(buf) - read)
		if r := c.cfg.EntrySize - inOff; want > r {
			want = r
		}
		e, err := c.ensure(ino, idx, true, false)
		if err != nil {
			return read, err
		}
		// Copy out; bytes beyond the entry's valid prefix are zero (hole).
		n := 0
		if inOff < int64(len(e.data)) {
			n = copy(buf[read:read+int(want)], e.data[inOff:])
		}
		for i := n; int64(i) < want; i++ {
			buf[read+i] = 0
		}
		c.env.Sleep(c.cfg.Cost.MemCopy(want))
		read += int(want)
	}
	return read, nil
}

// Write stores buf at off in the cache (write-back). The caller updates the
// inode size; partially covered, previously unseen chunks are fetched first
// so a later flush cannot clobber bytes outside the write.
func (c *Cache) Write(ino types.Ino, buf []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("cache: negative offset: %w", types.ErrInval)
	}
	written := 0
	for written < len(buf) {
		pos := off + int64(written)
		idx := uint64(pos / c.cfg.EntrySize)
		inOff := pos % c.cfg.EntrySize
		want := int64(len(buf) - written)
		if r := c.cfg.EntrySize - inOff; want > r {
			want = r
		}
		full := inOff == 0 && want == c.cfg.EntrySize
		e, err := c.ensure(ino, idx, !full, false)
		if err != nil {
			return err
		}
		c.mu.Lock()
		need := inOff + want
		if int64(len(e.data)) < need {
			grown := make([]byte, need, c.cfg.EntrySize)
			copy(grown, e.data)
			e.data = grown
		}
		copy(e.data[inOff:], buf[written:written+int(want)])
		e.dirty = true
		e.ver++
		c.touchLocked(e)
		c.mu.Unlock()
		c.env.Sleep(c.cfg.Cost.MemCopy(want))
		written += int(want)
	}
	return nil
}

// ensure returns the entry for (ino, idx), fetching it from the object store
// when fetch is true and it is absent. It may block on an in-flight fetch.
// prefetch suppresses the miss counter for read-ahead-initiated fetches.
func (c *Cache) ensure(ino types.Ino, idx uint64, fetch, prefetch bool) (*entry, error) {
	for {
		c.mu.Lock()
		fc := c.file(ino)
		if e, ok := fc.tree.Get(idx); ok {
			if e.loading == nil {
				c.stats.Hits.Add(1)
				c.touchLocked(e)
				c.mu.Unlock()
				return e, nil
			}
			ready := e.loading
			c.mu.Unlock()
			ready.Recv() // closed when the fetch completes
			continue
		}
		// Absent: create (and maybe fetch).
		e := &entry{ino: ino, idx: idx}
		if fetch {
			e.loading = sim.NewChan[struct{}](c.env)
		}
		fc.tree.Insert(idx, e)
		e.lruElem = c.lru.PushFront(e)
		if !prefetch {
			c.stats.Misses.Add(1)
		}
		c.evictLocked(e)
		c.mu.Unlock()
		if !fetch {
			return e, nil
		}
		data, err := c.fetchChunk(ino, idx)
		c.mu.Lock()
		e.data = data
		ready := e.loading
		e.loading = nil
		if err != nil {
			// Remove the failed entry entirely: leaving it resident with no
			// data would serve zeros for bytes the store still holds (and a
			// prefetch error would poison the later foreground read). The
			// next access refetches.
			if e.lruElem != nil {
				c.lru.Remove(e.lruElem)
				e.lruElem = nil
			}
			if fc := c.files[ino]; fc != nil {
				fc.tree.Delete(idx)
				if fc.tree.Len() == 0 && fc.raWindow == 0 {
					delete(c.files, ino)
				}
			}
		}
		c.mu.Unlock()
		ready.Close()
		if err != nil {
			return nil, err
		}
		return e, nil
	}
}

// fetchChunk reads and CRC-verifies one data object; a missing object is a
// hole (empty data). A chunk failing verification surfaces a typed integrity
// error rather than silently wrong bytes.
func (c *Cache) fetchChunk(ino types.Ino, idx uint64) ([]byte, error) {
	data, err := c.tr.GetChunk(ino, int64(idx))
	if err != nil {
		if isNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("cache: fetch chunk %d of %s: %w", idx, ino.Short(), err)
	}
	return data, nil
}

// readahead updates the sequential window and issues asynchronous prefetches
// (paper: window doubles while reads stay sequential, capped at
// MaxReadahead; a read starting at offset 0 jumps straight to the maximum).
func (c *Cache) readahead(ino types.Ino, off, n, size int64) {
	if c.cfg.MaxReadahead < c.cfg.EntrySize {
		return
	}
	c.mu.Lock()
	fc := c.file(ino)
	switch {
	case off == 0 && fc.raNextOff == 0:
		fc.raWindow = c.cfg.MaxReadahead
	case off == fc.raNextOff:
		if fc.raWindow == 0 {
			fc.raWindow = c.cfg.EntrySize
		} else if fc.raWindow < c.cfg.MaxReadahead {
			fc.raWindow *= 2
			if fc.raWindow > c.cfg.MaxReadahead {
				fc.raWindow = c.cfg.MaxReadahead
			}
		}
	default:
		// Non-sequential: reset.
		fc.raWindow = 0
		fc.raEdge = 0
	}
	fc.raNextOff = off + n
	window := fc.raWindow
	if window == 0 {
		c.mu.Unlock()
		return
	}
	target := off + n + window
	if target > size {
		target = size
	}
	start := fc.raEdge
	if start < off+n {
		start = off + n
	}
	firstIdx := start / c.cfg.EntrySize
	lastIdx := (target - 1) / c.cfg.EntrySize
	fc.raEdge = target
	c.mu.Unlock()

	for idx := firstIdx; idx <= lastIdx && idx*c.cfg.EntrySize < size; idx++ {
		idx := idx
		c.mu.Lock()
		_, present := c.file(ino).tree.Get(uint64(idx))
		c.mu.Unlock()
		if present {
			continue
		}
		c.stats.Readaheads.Add(1)
		c.env.Go(func() {
			if _, ok := c.prefetchSem.Recv(); !ok {
				return
			}
			defer c.prefetchSem.Send(struct{}{})
			_, _ = c.ensure(ino, uint64(idx), true, true)
		})
	}
}

// touchLocked moves e to the LRU front. Callers hold c.mu.
func (c *Cache) touchLocked(e *entry) {
	if e.lruElem != nil {
		c.lru.MoveToFront(e.lruElem)
	}
}

// evictLocked evicts LRU entries (sparing keep) until the cache fits.
// Callers hold c.mu; dirty victims are written back with the lock dropped.
func (c *Cache) evictLocked(keep *entry) {
	for c.lru.Len() > c.cfg.MaxEntries {
		el := c.lru.Back()
		if el == nil {
			return
		}
		victim := el.Value.(*entry)
		if victim == keep || victim.loading != nil || victim.wb != nil {
			// In-use or in-flight: move it up and stop rather than spin.
			c.lru.MoveToFront(el)
			return
		}
		if victim.dirty {
			// Write back while the entry is still visible, so concurrent
			// readers never fall through to pre-writeback store state. The
			// dirty bit stays set until the PUT succeeds, and the bytes are
			// snapshotted under the lock so a concurrent Write cannot tear
			// the in-flight PUT. The wb marker keeps other evictors off this
			// entry and lets Flush wait for the write-back to settle.
			victim.wb = sim.NewChan[struct{}](c.env)
			data := append([]byte(nil), victim.data...)
			ver, off := victim.ver, int64(victim.idx)*c.cfg.EntrySize
			c.stats.Writebacks.Add(1)
			c.mu.Unlock()
			err := c.tr.WriteAt(victim.ino, data, off)
			c.mu.Lock()
			done := victim.wb
			victim.wb = nil
			done.Close()
			if err != nil {
				// Still dirty, still resident: the next Flush retries the
				// PUT and reports the failure. Rotate the victim to the
				// front so the next eviction picks a healthier entry.
				c.stats.WritebackErrors.Add(1)
				if victim.lruElem != nil {
					c.lru.MoveToFront(victim.lruElem)
				}
				return
			}
			if victim.ver != ver || victim.lruElem == nil {
				continue // rewritten or removed while unlocked; stays as is
			}
			victim.dirty = false
		}
		c.lru.Remove(el)
		victim.lruElem = nil
		if fc := c.files[victim.ino]; fc != nil {
			fc.tree.Delete(victim.idx)
			if fc.tree.Len() == 0 {
				delete(c.files, victim.ino)
			}
		}
		c.stats.Evictions.Add(1)
	}
}

// flushLock returns the per-file flush serializer.
func (c *Cache) flushLock(ino types.Ino) *sim.Mutex {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.flushLocks[ino]
	if m == nil {
		m = sim.NewMutex(c.env)
		c.flushLocks[ino] = m
	}
	return m
}

// Flush writes back every dirty entry of ino (fsync). Entries stay resident.
// Flushes of the same file serialize, so a lease recall observing Flush's
// return knows no earlier write-back is still in flight. Flush also waits
// for concurrent eviction write-backs and retries the ones that failed, so a
// successful return means every byte dirtied before the call is durable.
func (c *Cache) Flush(ino types.Ino) error {
	lock := c.flushLock(ino)
	lock.Lock()
	defer lock.Unlock()
	type pending struct {
		e    *entry
		ver  uint64
		data []byte
	}
	for {
		c.mu.Lock()
		fc := c.files[ino]
		if fc == nil {
			c.mu.Unlock()
			return nil
		}
		var work []pending
		var inflight []*sim.Chan[struct{}]
		fc.tree.Range(func(idx uint64, e *entry) bool {
			switch {
			case e.wb != nil:
				// An eviction write-back owns this entry; wait for it below
				// and re-examine (it re-dirties the entry on failure).
				inflight = append(inflight, e.wb)
			case e.dirty:
				// Snapshot under the lock: a concurrent Write may mutate the
				// backing array while the PUT is in flight (torn flush).
				work = append(work, pending{e: e, ver: e.ver, data: append([]byte(nil), e.data...)})
			}
			return true
		})
		c.mu.Unlock()
		if len(work) == 0 && len(inflight) == 0 {
			return nil
		}
		// Write back with bounded parallelism: independent chunks flush
		// concurrently, which is what lets the write-back path saturate the
		// object store instead of serializing one PUT at a time.
		sem := sim.NewChan[struct{}](c.env)
		for i := 0; i < c.cfg.FlushParallelism; i++ {
			sem.Send(struct{}{})
		}
		g := sim.NewGroup(c.env)
		errs := make([]error, len(work))
		for i := range work {
			i := i
			if _, ok := sem.Recv(); !ok {
				return fmt.Errorf("cache: shut down during flush: %w", types.ErrIO)
			}
			g.Go(func() {
				defer sem.Send(struct{}{})
				p := work[i]
				off := int64(p.e.idx) * c.cfg.EntrySize
				if err := c.tr.WriteAt(ino, p.data, off); err != nil {
					errs[i] = fmt.Errorf("cache: flush %s: %w", ino.Short(), err)
					return
				}
				c.mu.Lock()
				if p.e.ver == p.ver {
					// Only mark clean if no Write landed mid-PUT; otherwise
					// the entry keeps its dirty bit for the next flush.
					p.e.dirty = false
				}
				c.mu.Unlock()
				c.stats.Writebacks.Add(1)
			})
		}
		g.Wait()
		for _, ch := range inflight {
			ch.Recv() // closed when the eviction write-back settles
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if len(inflight) == 0 {
			return nil
		}
	}
}

// FlushAll writes back every dirty entry of every file (fsync of the whole
// mount; the benchmark phase barrier).
func (c *Cache) FlushAll() error {
	c.mu.Lock()
	inos := make([]types.Ino, 0, len(c.files))
	for ino := range c.files {
		inos = append(inos, ino)
	}
	c.mu.Unlock()
	for _, ino := range inos {
		if err := c.Flush(ino); err != nil {
			return err
		}
	}
	return nil
}

// Invalidate drops every entry of ino without writing anything back — the
// flush-broadcast path that prevents stale reads when another client gains a
// write lease. Callers flush first when they hold dirty data they care about.
func (c *Cache) Invalidate(ino types.Ino) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fc := c.files[ino]
	if fc == nil {
		return
	}
	fc.tree.Range(func(idx uint64, e *entry) bool {
		if e.lruElem != nil {
			c.lru.Remove(e.lruElem)
			e.lruElem = nil
		}
		return true
	})
	delete(c.files, ino)
	// The flush lock is retained deliberately: deleting it while a Flush
	// holds it would let a later Flush run concurrently with that one.
}

// Clear drops every entry of every file without write-back (the global
// "echo 3 > drop_caches" benchmark step; callers flush first).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.files = make(map[types.Ino]*fileCache)
	c.lru.Init()
}

// Dirty reports whether ino has unwritten data.
func (c *Cache) Dirty(ino types.Ino) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	fc := c.files[ino]
	if fc == nil {
		return false
	}
	dirty := false
	fc.tree.Range(func(idx uint64, e *entry) bool {
		if e.dirty {
			dirty = true
			return false
		}
		return true
	})
	return dirty
}

// isNotExist matches wrapped not-found errors from any backend.
func isNotExist(err error) bool {
	return errors.Is(err, types.ErrNotExist)
}

// Readahead state accessors used by tests and the fio harness.

// Window returns ino's current read-ahead window in bytes.
func (c *Cache) Window(ino types.Ino) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fc := c.files[ino]; fc != nil {
		return fc.raWindow
	}
	return 0
}
