package cache

import (
	"bytes"
	"testing"
	"time"

	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

func cacheSetup(t *testing.T, chunk int64, maxEntries int, ra int64) (*Cache, *prt.Translator, sim.Env) {
	t.Helper()
	env := sim.NewRealEnv()
	t.Cleanup(env.Shutdown)
	tr := prt.New(objstore.NewMemStore(), chunk)
	c := New(env, tr, Config{EntrySize: chunk, MaxEntries: maxEntries, MaxReadahead: ra})
	return c, tr, env
}

func TestWriteBackRoundTrip(t *testing.T) {
	c, tr, _ := cacheSetup(t, 64, 100, 0)
	ino := types.NewInoSource(1).Next()
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := c.Write(ino, data, 0); err != nil {
		t.Fatal(err)
	}
	// Store untouched before flush (write-back).
	if keys, _ := tr.Store().List(prt.PrefixData); len(keys) != 0 {
		t.Fatalf("write-through detected: %v", keys)
	}
	if !c.Dirty(ino) {
		t.Fatal("Dirty = false after write")
	}
	// Read through cache sees the written data.
	buf := make([]byte, 200)
	if n, err := c.Read(ino, buf, 0, 200); err != nil || n != 200 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("cache read mismatch")
	}
	// Flush persists.
	if err := c.Flush(ino); err != nil {
		t.Fatal(err)
	}
	if c.Dirty(ino) {
		t.Fatal("Dirty after flush")
	}
	got := make([]byte, 200)
	if _, err := tr.ReadAt(ino, got, 0, 200); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("store data mismatch after flush")
	}
}

func TestReadThroughAndHit(t *testing.T) {
	c, tr, _ := cacheSetup(t, 64, 100, 0)
	ino := types.NewInoSource(2).Next()
	want := bytes.Repeat([]byte{0x5A}, 128)
	if err := tr.WriteAt(ino, want, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if _, err := c.Read(ino, buf, 0, 128); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("read-through mismatch")
	}
	misses := c.Stat().Misses.Load()
	if _, err := c.Read(ino, buf, 0, 128); err != nil {
		t.Fatal(err)
	}
	if c.Stat().Misses.Load() != misses {
		t.Fatal("second read should be all hits")
	}
	if c.Stat().Hits.Load() == 0 {
		t.Fatal("no hits recorded")
	}
}

func TestPartialWritePreservesSurroundingBytes(t *testing.T) {
	c, tr, _ := cacheSetup(t, 64, 100, 0)
	ino := types.NewInoSource(3).Next()
	base := bytes.Repeat([]byte{1}, 64)
	if err := tr.WriteAt(ino, base, 0); err != nil {
		t.Fatal(err)
	}
	// Partial write into the middle of the chunk via the cache.
	if err := c.Write(ino, []byte{9, 9, 9}, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ino); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if _, err := tr.ReadAt(ino, got, 0, 64); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{}, base...)
	copy(want[10:], []byte{9, 9, 9})
	if !bytes.Equal(got, want) {
		t.Fatalf("partial write clobbered chunk:\n got %v\nwant %v", got[:16], want[:16])
	}
}

func TestLRUEvictionWritesBackDirty(t *testing.T) {
	c, tr, _ := cacheSetup(t, 64, 2, 0)
	ino := types.NewInoSource(4).Next()
	// Three chunks through a 2-entry cache.
	for i := int64(0); i < 3; i++ {
		if err := c.Write(ino, bytes.Repeat([]byte{byte(i + 1)}, 64), i*64); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 2 {
		t.Fatalf("cache holds %d entries, cap 2", c.Len())
	}
	if c.Stat().Evictions.Load() == 0 || c.Stat().Writebacks.Load() == 0 {
		t.Fatalf("stats: %+v evictions, %+v writebacks",
			c.Stat().Evictions.Load(), c.Stat().Writebacks.Load())
	}
	// Every chunk must be readable with correct content (evicted ones from
	// the store, resident ones from cache).
	buf := make([]byte, 64)
	for i := int64(0); i < 3; i++ {
		if _, err := c.Read(ino, buf, i*64, 192); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("chunk %d content %d", i, buf[0])
		}
	}
	_ = tr
}

func TestInvalidateDropsWithoutWriteback(t *testing.T) {
	c, tr, _ := cacheSetup(t, 64, 100, 0)
	ino := types.NewInoSource(5).Next()
	if err := c.Write(ino, []byte("dirty"), 0); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(ino)
	if c.Len() != 0 {
		t.Fatalf("entries after invalidate: %d", c.Len())
	}
	if keys, _ := tr.Store().List(prt.PrefixData); len(keys) != 0 {
		t.Fatal("invalidate wrote data back")
	}
	// Subsequent read misses and sees store state (hole → zeros).
	buf := make([]byte, 5)
	if _, err := c.Read(ino, buf, 0, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 5)) {
		t.Fatalf("stale data after invalidate: %v", buf)
	}
}

func TestReadaheadFromOffsetZeroJumpsToMax(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		tr := prt.New(objstore.NewMemStore(), 64)
		c := New(env, tr, Config{EntrySize: 64, MaxEntries: 1000, MaxReadahead: 64 * 8})
		ino := types.NewInoSource(6).Next()
		size := int64(64 * 32)
		if err := tr.WriteAt(ino, bytes.Repeat([]byte{3}, int(size)), 0); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64)
		if _, err := c.Read(ino, buf, 0, size); err != nil {
			t.Error(err)
			return
		}
		if got := c.Window(ino); got != 64*8 {
			t.Errorf("window after offset-0 read = %d, want max", got)
		}
		// Give prefetches a chance to land, then the next sequential reads
		// must be hits.
		env.Sleep(time.Second)
		missesBefore := c.Stat().Misses.Load()
		for off := int64(64); off < 64*8; off += 64 {
			if _, err := c.Read(ino, buf, off, size); err != nil {
				t.Error(err)
				return
			}
		}
		if got := c.Stat().Misses.Load(); got != missesBefore {
			t.Errorf("sequential reads missed %d times despite read-ahead", got-missesBefore)
		}
		if c.Stat().Readaheads.Load() == 0 {
			t.Error("no read-aheads issued")
		}
	})
}

func TestReadaheadWindowGrowsWhenSequential(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		tr := prt.New(objstore.NewMemStore(), 64)
		c := New(env, tr, Config{EntrySize: 64, MaxEntries: 1000, MaxReadahead: 64 * 16})
		ino := types.NewInoSource(7).Next()
		size := int64(64 * 64)
		if err := tr.WriteAt(ino, bytes.Repeat([]byte{4}, int(size)), 0); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64)
		// Start mid-file so the offset-0 shortcut does not apply.
		var last int64
		for off := int64(64 * 4); off < 64*12; off += 64 {
			if _, err := c.Read(ino, buf, off, size); err != nil {
				t.Error(err)
				return
			}
			w := c.Window(ino)
			if w < last {
				t.Errorf("window shrank during sequential reads: %d -> %d", last, w)
			}
			last = w
		}
		if last == 0 {
			t.Error("window never grew")
		}
		// A random jump resets the window.
		if _, err := c.Read(ino, buf, 0, size); err != nil {
			t.Error(err)
			return
		}
		if got := c.Window(ino); got > last && got != 64*16 {
			t.Errorf("window after jump = %d", got)
		}
	})
}

func TestConcurrentReadersSingleFetch(t *testing.T) {
	// Two readers of the same missing chunk: one fetch, the other waits on
	// the in-flight marker.
	env := sim.NewVirtEnv()
	env.Run(func() {
		prof := objstore.TestProfile()
		prof.OpOverhead = 10 * time.Millisecond
		cl := objstore.NewCluster(env, prof)
		defer cl.Close()
		tr := prt.New(cl, 64)
		c := New(env, tr, Config{EntrySize: 64, MaxEntries: 100, MaxReadahead: 0})
		ino := types.NewInoSource(8).Next()
		if err := tr.WriteAt(ino, bytes.Repeat([]byte{9}, 64), 0); err != nil {
			t.Error(err)
			return
		}
		gets := cl.Stat().Gets.Load()
		g := sim.NewGroup(env)
		for i := 0; i < 8; i++ {
			g.Go(func() {
				buf := make([]byte, 64)
				if _, err := c.Read(ino, buf, 0, 64); err != nil {
					t.Error(err)
				}
				if buf[0] != 9 {
					t.Error("bad data")
				}
			})
		}
		g.Wait()
		if got := cl.Stat().Gets.Load() - gets; got != 1 {
			t.Errorf("concurrent readers issued %d GETs, want 1", got)
		}
	})
}

func TestReadBeyondSizeClipped(t *testing.T) {
	c, _, _ := cacheSetup(t, 64, 10, 0)
	ino := types.NewInoSource(9).Next()
	if err := c.Write(ino, []byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := c.Read(ino, buf, 0, 5)
	if err != nil || n != 5 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	n, err = c.Read(ino, buf, 5, 5)
	if err != nil || n != 0 {
		t.Fatalf("Read at EOF = %d, %v", n, err)
	}
}
