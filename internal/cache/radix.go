// Package cache implements ArkFS's user-level data object cache (paper
// §III-D): write-back caching of 2 MiB data objects indexed by a radix tree,
// with a sequential read-ahead window that grows to a configurable maximum
// (8 MiB by default, jumping straight to the maximum when a file is read from
// offset zero).
package cache

// The radix tree maps a file-local chunk index to a cache entry. Because the
// entries are large (2 MiB), even terabyte files index with a shallow tree —
// the property the paper relies on for fast lookups.

const (
	radixBits   = 6
	radixFanout = 1 << radixBits // 64
	radixMask   = radixFanout - 1
)

// radix is a height-adaptive radix tree with 64-way fanout. Values are
// stored at level 0; internal nodes hold child pointers. The zero value is
// an empty tree.
type radix[V any] struct {
	root   *radixNode[V]
	height int // levels below the root; capacity = 64^(height+1)
	size   int
}

type radixNode[V any] struct {
	children [radixFanout]*radixNode[V]
	values   [radixFanout]*V
	count    int
}

// capacity returns the largest index storable at the current height.
func (t *radix[V]) capacity() uint64 {
	bits := uint((t.height + 1) * radixBits)
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<bits - 1
}

// grow raises the tree height until idx fits.
func (t *radix[V]) grow(idx uint64) {
	if t.root == nil {
		t.root = &radixNode[V]{}
	}
	for idx > t.capacity() {
		newRoot := &radixNode[V]{}
		if t.size > 0 || t.root.count > 0 {
			newRoot.children[0] = t.root
			newRoot.count = 1
		}
		t.root = newRoot
		t.height++
	}
}

// slot returns the child slot of idx at the given level (level 0 = leaves).
func slot(idx uint64, level int) int {
	return int(idx >> (uint(level) * radixBits) & radixMask)
}

// Get returns the value at idx.
func (t *radix[V]) Get(idx uint64) (*V, bool) {
	if t.root == nil || idx > t.capacity() {
		return nil, false
	}
	n := t.root
	for level := t.height; level > 0; level-- {
		n = n.children[slot(idx, level)]
		if n == nil {
			return nil, false
		}
	}
	v := n.values[slot(idx, 0)]
	if v == nil {
		return nil, false
	}
	return v, true
}

// Insert stores v at idx, replacing any existing value.
func (t *radix[V]) Insert(idx uint64, v *V) {
	t.grow(idx)
	n := t.root
	for level := t.height; level > 0; level-- {
		s := slot(idx, level)
		if n.children[s] == nil {
			n.children[s] = &radixNode[V]{}
			n.count++
		}
		n = n.children[s]
	}
	s := slot(idx, 0)
	if n.values[s] == nil {
		n.count++
		t.size++
	}
	n.values[s] = v
}

// Delete removes the value at idx, pruning empty nodes, and reports whether
// a value was present.
func (t *radix[V]) Delete(idx uint64) bool {
	if t.root == nil || idx > t.capacity() {
		return false
	}
	var path [12]*radixNode[V] // 64-bit keys need at most ⌈64/6⌉+1 levels
	n := t.root
	for level := t.height; level > 0; level-- {
		path[level] = n
		n = n.children[slot(idx, level)]
		if n == nil {
			return false
		}
	}
	s := slot(idx, 0)
	if n.values[s] == nil {
		return false
	}
	n.values[s] = nil
	n.count--
	t.size--
	// Prune emptied nodes bottom-up.
	child := n
	for level := 1; level <= t.height; level++ {
		if child.count > 0 {
			break
		}
		parent := path[level]
		parent.children[slot(idx, level)] = nil
		parent.count--
		child = parent
	}
	return true
}

// Len returns the number of stored values.
func (t *radix[V]) Len() int { return t.size }

// Range calls fn on every (idx, value) pair in ascending index order until
// fn returns false.
func (t *radix[V]) Range(fn func(idx uint64, v *V) bool) {
	if t.root == nil {
		return
	}
	t.walk(t.root, t.height, 0, fn)
}

func (t *radix[V]) walk(n *radixNode[V], level int, prefix uint64, fn func(uint64, *V) bool) bool {
	if level == 0 {
		for s := 0; s < radixFanout; s++ {
			if v := n.values[s]; v != nil {
				if !fn(prefix|uint64(s), v) {
					return false
				}
			}
		}
		return true
	}
	for s := 0; s < radixFanout; s++ {
		if c := n.children[s]; c != nil {
			if !t.walk(c, level-1, prefix|uint64(s)<<(uint(level)*radixBits), fn) {
				return false
			}
		}
	}
	return true
}
