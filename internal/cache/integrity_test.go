package cache

import (
	"bytes"
	"errors"
	"testing"

	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// Regression: a sequential read whose readahead window crosses a torn chunk
// must surface a typed integrity error when the reader reaches the torn
// chunk — never silently short or zero bytes. The tear is persistent on the
// read side (FaultStore serves the same short object to the async prefetch
// and to the foreground read that follows), so whichever of the two fetches
// the chunk first, the consumer sees ErrIntegrity; neighbouring chunks keep
// serving verified bytes.
func TestReadaheadCrossingTornChunkSurfacesIntegrity(t *testing.T) {
	const chunk = 64
	env := sim.NewRealEnv()
	t.Cleanup(env.Shutdown)
	fs := objstore.NewFaultStore(objstore.NewMemStore())
	tr := prt.New(fs, chunk)
	c := New(env, tr, Config{EntrySize: chunk, MaxEntries: 100, MaxReadahead: 2 * chunk})

	ino := types.NewInoSource(1).Next()
	var want []byte
	for idx := 0; idx < 3; idx++ {
		want = append(want, chunkPattern(idx, chunk)...)
	}
	if err := tr.WriteAt(ino, want, 0); err != nil {
		t.Fatal(err)
	}
	const size = 3 * chunk

	// Tear reads of chunk 1 only. The sealed object is served at half its
	// length, so its CRC trailer cannot verify.
	fs.TearNextRead(prt.DataKey(ino, 1), 1)

	// A read starting at offset 0 jumps the window to MaxReadahead and
	// prefetches chunks 1 and 2 behind it.
	buf := make([]byte, chunk)
	if n, err := c.Read(ino, buf, 0, size); err != nil || n != chunk {
		t.Fatalf("chunk 0 read = %d, %v", n, err)
	}
	if !bytes.Equal(buf, want[:chunk]) {
		t.Fatal("chunk 0 bytes mismatch")
	}
	if c.Stat().Readaheads.Load() == 0 {
		t.Fatal("readahead never engaged; the test is not crossing the boundary")
	}

	// Reaching the torn chunk surfaces the typed error, whether the async
	// prefetch or this read fetched it first.
	if _, err := c.Read(ino, buf, chunk, size); !errors.Is(err, types.ErrIntegrity) {
		t.Fatalf("read of torn chunk: %v, want ErrIntegrity", err)
	}

	// The tear poisons only its own chunk: the neighbour past the boundary
	// still reads verified bytes.
	if n, err := c.Read(ino, buf, 2*chunk, size); err != nil || n != chunk {
		t.Fatalf("chunk 2 read = %d, %v", n, err)
	}
	if !bytes.Equal(buf, want[2*chunk:]) {
		t.Fatal("chunk 2 bytes mismatch")
	}
}
