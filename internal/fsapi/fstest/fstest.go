// Package fstest provides a reusable conformance suite run against every
// fsapi.FileSystem implementation (ArkFS and all baselines), so the
// benchmark harness can rely on uniform semantics.
package fstest

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"arkfs/internal/fsapi"
	"arkfs/internal/types"
)

// Level selects how much of the POSIX surface a system claims to support.
type Level int

// Conformance levels.
const (
	// LevelPOSIX: directory semantics, error codes, rename, the works
	// (ArkFS, cephsim, marfssim).
	LevelPOSIX Level = iota
	// LevelObject: path-as-key systems with relaxed semantics (s3fssim,
	// goofyssim): no strict error-code guarantees on edge cases.
	LevelObject
)

// Run exercises the common contract on fs.
func Run(t *testing.T, fs fsapi.FileSystem, level Level) {
	t.Helper()
	ctx := context.Background()

	// Tree building.
	if err := fs.Mkdir(ctx, "/dir", 0755); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := fs.Mkdir(ctx, "/dir/sub", 0755); err != nil {
		t.Fatalf("mkdir nested: %v", err)
	}

	// Create, write, stat.
	f, err := fsapi.Create(ctx, fs, "/dir/file.txt", 0644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	payload := bytes.Repeat([]byte("0123456789abcdef"), 256) // 4 KiB
	if _, err := f.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Fsync(ctx); err != nil {
		t.Fatalf("fsync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st, err := fs.Stat(ctx, "/dir/file.txt")
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if st.Size != int64(len(payload)) {
		t.Fatalf("stat size = %d, want %d", st.Size, len(payload))
	}
	if st.Type != types.TypeRegular {
		t.Fatalf("stat type = %v", st.Type)
	}

	// Read back sequentially.
	r, err := fs.Open(ctx, "/dir/file.txt", types.ORdonly, 0)
	if err != nil {
		t.Fatalf("open ro: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("readall: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %d bytes != written %d", len(got), len(payload))
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close ro: %v", err)
	}

	// Random access.
	r2, err := fs.Open(ctx, "/dir/file.txt", types.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := r2.ReadAt(buf, 16); err != nil && err != io.EOF {
		t.Fatalf("readat: %v", err)
	}
	if !bytes.Equal(buf, payload[16:32]) {
		t.Fatalf("readat data mismatch: %q", buf)
	}
	_ = r2.Close()

	// Readdir sees the file and subdirectory.
	ents, err := fs.Readdir(ctx, "/dir")
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	names := map[string]types.FileType{}
	for _, de := range ents {
		names[de.Name] = de.Type
	}
	if names["file.txt"] != types.TypeRegular || names["sub"] != types.TypeDir {
		t.Fatalf("readdir = %v", names)
	}

	// Stat of missing entries.
	if _, err := fs.Stat(ctx, "/dir/ghost"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("stat missing: %v", err)
	}
	if _, err := fs.Open(ctx, "/dir/ghost", types.ORdonly, 0); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}

	// O_EXCL.
	if _, err := fs.Open(ctx, "/dir/file.txt", types.OWronly|types.OCreate|types.OExcl, 0644); !errors.Is(err, types.ErrExist) {
		t.Fatalf("o_excl on existing: %v", err)
	}

	// Rename within a directory.
	if err := fs.Rename(ctx, "/dir/file.txt", "/dir/renamed.txt"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, err := fs.Stat(ctx, "/dir/file.txt"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("old name after rename: %v", err)
	}
	st2, err := fs.Stat(ctx, "/dir/renamed.txt")
	if err != nil || st2.Size != int64(len(payload)) {
		t.Fatalf("renamed stat: %+v, %v", st2, err)
	}
	// Content survives the rename.
	r3, err := fs.Open(ctx, "/dir/renamed.txt", types.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got3, _ := io.ReadAll(r3)
	_ = r3.Close()
	if !bytes.Equal(got3, payload) {
		t.Fatalf("content after rename: %d bytes", len(got3))
	}

	// Unlink and directory cleanup.
	if err := fs.Unlink(ctx, "/dir/renamed.txt"); err != nil {
		t.Fatalf("unlink: %v", err)
	}
	if _, err := fs.Stat(ctx, "/dir/renamed.txt"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("stat after unlink: %v", err)
	}
	if level == LevelPOSIX {
		if err := fs.Rmdir(ctx, "/dir"); !errors.Is(err, types.ErrNotEmpty) {
			t.Fatalf("rmdir non-empty: %v", err)
		}
	}
	if err := fs.Rmdir(ctx, "/dir/sub"); err != nil {
		t.Fatalf("rmdir sub: %v", err)
	}
	if err := fs.Rmdir(ctx, "/dir"); err != nil {
		t.Fatalf("rmdir: %v", err)
	}

	// Overwrite shrinks with O_TRUNC.
	w, err := fs.Open(ctx, "/trunc", types.OWronly|types.OCreate, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("long content here")); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()
	w2, err := fs.Open(ctx, "/trunc", types.OWronly|types.OCreate|types.OTrunc, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write([]byte("tiny")); err != nil {
		t.Fatal(err)
	}
	_ = w2.Close()
	if err := fs.FlushAll(ctx); err != nil {
		t.Fatalf("flushall: %v", err)
	}
	st3, err := fs.Stat(ctx, "/trunc")
	if err != nil || st3.Size != 4 {
		t.Fatalf("after trunc rewrite: %+v, %v", st3, err)
	}
	if err := fs.Unlink(ctx, "/trunc"); err != nil {
		t.Fatal(err)
	}
}
