// Package fsapi defines the file-system interface shared by ArkFS and every
// baseline (CephFS-like, MarFS-like, S3FS-like, goofys-like), so workloads
// and the benchmark harness drive all systems through identical code.
package fsapi

import (
	"context"
	"io"

	"arkfs/internal/core"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// File is an open file handle. Handle-level I/O is context-free (mirroring
// the io interfaces); cancellation applies at operation start via Open —
// except Fsync, whose flush work is heavy enough to deserve a context of its
// own.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	// Sync flushes the handle's data and metadata (fsync), context-free for
	// io-style callers. Equivalent to Fsync(context.Background()).
	Sync() error
	// Fsync is Sync under a context: the caller's deadline and trace
	// identity propagate into the flush's store and metadata RPCs, so a
	// workload's fsync shows up inside its operation span and honors
	// cancellation at the forwarding boundaries.
	Fsync(ctx context.Context) error
	// Size returns the handle's view of the file size.
	Size() int64
}

// FileSystem is the near-POSIX surface the workloads exercise. Every
// operation takes a context.Context: implementations honor deadlines and
// cancellation at their forwarding/wait boundaries (ArkFS propagates it into
// RPC calls and lease-acquire waits), and observability layers attach per-op
// trace spans to it.
type FileSystem interface {
	Mkdir(ctx context.Context, path string, mode types.Mode) error
	Open(ctx context.Context, path string, flags types.OpenFlag, mode types.Mode) (File, error)
	Stat(ctx context.Context, path string) (*types.Inode, error)
	Unlink(ctx context.Context, path string) error
	Rmdir(ctx context.Context, path string) error
	Rename(ctx context.Context, src, dst string) error
	Readdir(ctx context.Context, path string) ([]wire.Dentry, error)
	// FlushAll makes all buffered state durable (the fsync-per-phase step).
	FlushAll(ctx context.Context) error
	// Close shuts the mount down cleanly. Close is idempotent: a second call
	// returns nil without repeating shutdown work.
	Close() error
}

// Create is the creat(2) shorthand over any FileSystem.
func Create(ctx context.Context, fs FileSystem, path string, mode types.Mode) (File, error) {
	return fs.Open(ctx, path, types.OWronly|types.OCreate|types.OTrunc, mode)
}

// arkFS adapts *core.Client to FileSystem (the method sets match except for
// Open's concrete return type).
type arkFS struct {
	*core.Client
}

// Adapt wraps an ArkFS client in the common interface.
func Adapt(c *core.Client) FileSystem { return arkFS{c} }

// Open implements FileSystem.
func (a arkFS) Open(ctx context.Context, path string, flags types.OpenFlag, mode types.Mode) (File, error) {
	f, err := a.Client.Open(ctx, path, flags, mode)
	if err != nil {
		return nil, err
	}
	return f, nil
}
