// Package fsapi defines the file-system interface shared by ArkFS and every
// baseline (CephFS-like, MarFS-like, S3FS-like, goofys-like), so workloads
// and the benchmark harness drive all systems through identical code.
package fsapi

import (
	"io"

	"arkfs/internal/core"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// File is an open file handle.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	// Sync flushes the handle's data and metadata (fsync).
	Sync() error
	// Size returns the handle's view of the file size.
	Size() int64
}

// FileSystem is the near-POSIX surface the workloads exercise.
type FileSystem interface {
	Mkdir(path string, mode types.Mode) error
	Open(path string, flags types.OpenFlag, mode types.Mode) (File, error)
	Stat(path string) (*types.Inode, error)
	Unlink(path string) error
	Rmdir(path string) error
	Rename(src, dst string) error
	Readdir(path string) ([]wire.Dentry, error)
	// FlushAll makes all buffered state durable (the fsync-per-phase step).
	FlushAll() error
	// Close shuts the mount down cleanly.
	Close() error
}

// Create is the creat(2) shorthand over any FileSystem.
func Create(fs FileSystem, path string, mode types.Mode) (File, error) {
	return fs.Open(path, types.OWronly|types.OCreate|types.OTrunc, mode)
}

// arkFS adapts *core.Client to FileSystem (the method sets match except for
// Open's concrete return type).
type arkFS struct {
	*core.Client
}

// Adapt wraps an ArkFS client in the common interface.
func Adapt(c *core.Client) FileSystem { return arkFS{c} }

// Open implements FileSystem.
func (a arkFS) Open(path string, flags types.OpenFlag, mode types.Mode) (File, error) {
	f, err := a.Client.Open(path, flags, mode)
	if err != nil {
		return nil, err
	}
	return f, nil
}
