// Command objstored serves an object store over the REST API the PRT module
// consumes (PUT/GET/HEAD/DELETE /o/<key>, GET /list?prefix=). It is the
// S3-compatible backend for live multi-process ArkFS demos.
//
// Usage:
//
//	objstored [-listen :9000] [-debug-addr :9100] [-qos-rate 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/obs/expose"
	"arkfs/internal/qos"
)

func main() {
	listen := flag.String("listen", ":9000", "HTTP listen address")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /stats.json, /healthz and pprof on this address (empty: off)")
	qosRate := flag.Float64("qos-rate", 0, "per-tenant admission rate keyed on X-Ark-Tenant, requests/sec; refusals answer 429 with Retry-After (0: no admission control)")
	qosBurst := flag.Float64("qos-burst", 8, "per-tenant admission burst depth (with -qos-rate)")
	flag.Parse()
	store := objstore.NewMemStore()
	gw := objstore.NewGateway(store)
	if *qosRate > 0 {
		gw.SetQoS(qos.NewLimiter(qos.Limits{Rate: *qosRate, Burst: *qosBurst}))
		fmt.Printf("objstored: per-tenant admission at %.1f req/s (burst %.0f)\n", *qosRate, *qosBurst)
	}
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		gw.SetObs(reg)
		dbg, err := expose.Serve(*debugAddr, expose.Options{Reg: reg})
		if err != nil {
			log.Fatalf("objstored: debug server: %v", err)
		}
		defer dbg.Close()
		fmt.Printf("objstored: debug endpoints on http://%s/\n", dbg.Addr())
	}
	fmt.Printf("objstored: serving object REST API on %s\n", *listen)
	log.Fatal(http.ListenAndServe(*listen, gw))
}
