// Command objstored serves an object store over the REST API the PRT module
// consumes (PUT/GET/HEAD/DELETE /o/<key>, GET /list?prefix=). It is the
// S3-compatible backend for live multi-process ArkFS demos.
//
// Usage:
//
//	objstored [-listen :9000] [-debug-addr :9100]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/obs/expose"
)

func main() {
	listen := flag.String("listen", ":9000", "HTTP listen address")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /stats.json, /healthz and pprof on this address (empty: off)")
	flag.Parse()
	store := objstore.NewMemStore()
	gw := objstore.NewGateway(store)
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		gw.SetObs(reg)
		dbg, err := expose.Serve(*debugAddr, expose.Options{Reg: reg})
		if err != nil {
			log.Fatalf("objstored: debug server: %v", err)
		}
		defer dbg.Close()
		fmt.Printf("objstored: debug endpoints on http://%s/\n", dbg.Addr())
	}
	fmt.Printf("objstored: serving object REST API on %s\n", *listen)
	log.Fatal(http.ListenAndServe(*listen, gw))
}
