// Command objstored serves an object store over the REST API the PRT module
// consumes (PUT/GET/HEAD/DELETE /o/<key>, GET /list?prefix=). It is the
// S3-compatible backend for live multi-process ArkFS demos.
//
// Usage:
//
//	objstored [-listen :9000]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"arkfs/internal/objstore"
)

func main() {
	listen := flag.String("listen", ":9000", "HTTP listen address")
	flag.Parse()
	store := objstore.NewMemStore()
	gw := objstore.NewGateway(store)
	fmt.Printf("objstored: serving object REST API on %s\n", *listen)
	log.Fatal(http.ListenAndServe(*listen, gw))
}
