// Command arkbench regenerates every table and figure of the ArkFS paper's
// evaluation (IPDPS 2023 §IV) on the simulated substrate.
//
// Usage:
//
//	arkbench [flags] <experiment>...
//	arkbench all
//
// Experiments: fig1 fig4 fig5 fig6a fig6b fig7 table2 all
//
// Chaos mode: arkbench -chaos -seed N replays the seeded fault scenario
// exactly; a failing run prints its seed so the sequence can be reproduced.
// With -overload it instead replays the seeded overload-protection scenario
// (hostile-tenant flood against the admission/brownout/breaker stack) and
// asserts its contract: no acked-op loss, polite goodput within 80% of the
// isolated baseline, typed pushback for the hostile tenant, convergence.
//
// Bench mode: arkbench -bench-json out.json -seed N writes the seeded
// benchmark trajectory (mdtest, fio, scalability, tenant isolation, metrics
// fingerprint) in the stable arkfs-bench/v3 schema; the same seed yields a
// byte-identical file apart from the sharded sweep, which is stable to ~0.1%.
//
// Fsck mode: arkbench -fsck -seed N deploys and populates a file system,
// shuts it down cleanly, bit-flips a few objects at rest, and reports what
// the offline checker detects; with -repair it also runs the scrubber and
// fails unless the image re-checks clean.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"arkfs/internal/harness"
	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/obs/expose"
)

// modeFlags is the subset of flags whose combinations can contradict each
// other; validateFlags rejects the nonsensical ones before any work starts.
type modeFlags struct {
	Chaos         bool
	Overload      bool // -overload (chaos-mode variant)
	Stats         bool
	StatsJSON     bool   // -json
	BenchJSON     string // -bench-json path
	BenchBaseline string // -bench-baseline path
	Fsck          bool
	FsckRepair    bool // -repair
}

// validateFlags returns a usage error for contradictory mode combinations:
// -chaos, -stats, -bench-json, and -fsck are exclusive modes, -json only
// formats -stats output, and -repair only modifies -fsck.
func validateFlags(m modeFlags) error {
	if m.Chaos && m.Stats {
		return errors.New("-chaos and -stats are exclusive modes; run them separately")
	}
	if m.BenchJSON != "" && m.Chaos {
		return errors.New("-bench-json and -chaos are exclusive modes; run them separately")
	}
	if m.BenchJSON != "" && m.Stats {
		return errors.New("-bench-json and -stats are exclusive modes; run them separately")
	}
	if m.Fsck && m.Chaos {
		return errors.New("-fsck and -chaos are exclusive modes; run them separately")
	}
	if m.Fsck && m.Stats {
		return errors.New("-fsck and -stats are exclusive modes; run them separately")
	}
	if m.Fsck && m.BenchJSON != "" {
		return errors.New("-fsck and -bench-json are exclusive modes; run them separately")
	}
	if m.StatsJSON && !m.Stats {
		return errors.New("-json only formats -stats output; add -stats (bench mode is always JSON via -bench-json)")
	}
	if m.FsckRepair && !m.Fsck {
		return errors.New("-repair only applies to -fsck; add -fsck")
	}
	if m.BenchBaseline != "" && m.BenchJSON == "" {
		return errors.New("-bench-baseline only checks -bench-json output; add -bench-json")
	}
	if m.Overload && !m.Chaos {
		return errors.New("-overload selects the chaos-mode overload scenario; add -chaos")
	}
	return nil
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "use the quick (smoke-test) workload scale")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")
		files   = flag.Int("mdtest-files", 0, "override mdtest files per process")
		procs   = flag.Int("procs", 0, "override mdtest/fio process count")
		clients = flag.String("clients", "", "override scalability client counts, e.g. 1,4,16,64")
		flaky   = flag.Float64("flaky", 0, "inject store failures into ArkFS runs with this probability (e.g. 0.1)")
		seed    = flag.Int64("flaky-seed", 1, "seed for the injected-failure RNG")
		retries = flag.Int("store-retries", 0, "enable the retrying store path with up to N attempts (0: off)")

		chaos      = flag.Bool("chaos", false, "run a seeded chaos scenario instead of an experiment")
		chaosSeed  = flag.Int64("seed", 1, "chaos/bench/fsck scenario seed; a failing run prints the seed to replay")
		chaosData  = flag.Bool("chaos-data", false, "chaos: write file contents and verify byte-exact read-back")
		chaosVerbo = flag.Bool("chaos-log", false, "chaos: print the full run narration")
		overload   = flag.Bool("overload", false, "chaos: run the seeded overload-protection scenario (hostile-tenant flood) instead of the fault scenario")

		stats     = flag.Bool("stats", false, "run an instrumented deployment and print its metrics")
		statsJSON = flag.Bool("json", false, "stats: emit the snapshot as JSON instead of a table")
		tenants   = flag.Int("tenants", 0, "stats: color the clients with N tenant IDs and run the zipfian multi-tenant workload (0: one tenant per client)")

		fsckMode   = flag.Bool("fsck", false, "run a seeded corruption/scrub drill instead of an experiment")
		fsckRepair = flag.Bool("repair", false, "fsck: scrub-repair the corrupted image and fail unless it re-checks clean")

		benchJSON     = flag.String("bench-json", "", "run the seeded benchmark trajectory and write the arkfs-bench/v3 report to this file (- for stdout)")
		benchBaseline = flag.String("bench-baseline", "", "bench: compare the run against this committed arkfs-bench/v3 report and fail on a metadata-throughput regression")
		debugAddr     = flag.String("debug-addr", "", "serve /metrics, /stats.json, /healthz and pprof on this address while running (empty: off)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: arkbench [flags] <fig1|fig4|fig5|fig6a|fig6b|fig7|table2|all|ablate|ablate-journal|ablate-readahead|ablate-entrysize>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := validateFlags(modeFlags{
		Chaos: *chaos, Overload: *overload, Stats: *stats, StatsJSON: *statsJSON,
		BenchJSON: *benchJSON, BenchBaseline: *benchBaseline,
		Fsck: *fsckMode, FsckRepair: *fsckRepair,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "arkbench: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		dbg, err := expose.Serve(*debugAddr, expose.Options{Reg: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "arkbench: debug server: %v\n", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "arkbench: debug endpoints on http://%s/\n", dbg.Addr())
	}

	if *benchJSON != "" {
		cfg := harness.BenchConfig{Seed: *chaosSeed, Obs: reg}
		if *files > 0 {
			cfg.FilesPerProc = *files
		}
		if *procs > 0 {
			cfg.Procs = *procs
		}
		if *clients != "" {
			cfg.Clients = parseClients(*clients)
		}
		rep, err := harness.RunBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arkbench: bench: %v\n", err)
			os.Exit(1)
		}
		out := rep.JSON()
		if *benchJSON == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*benchJSON, out, 0644); err != nil {
			fmt.Fprintf(os.Stderr, "arkbench: bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "arkbench: bench seed %d: %d mdtest phases, fio %.2f/%.2f GiB/s, fingerprint %s\n",
			rep.Seed, len(rep.MdtestEasy)+len(rep.MdtestHard),
			rep.FioWrite.GiBps, rep.FioRead.GiBps, rep.MetricsSHA256[:12])
		if *benchBaseline != "" {
			if err := checkBaseline(rep, *benchBaseline); err != nil {
				fmt.Fprintf(os.Stderr, "arkbench: bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "arkbench: bench: no regression against %s\n", *benchBaseline)
		}
		return
	}
	if *stats {
		snap, err := harness.RunStats(harness.StatsConfig{
			Flaky: *flaky, FlakySeed: *seed, Obs: reg,
			Tenants: *tenants, TenantSeed: *chaosSeed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "arkbench: stats: %v\n", err)
			os.Exit(1)
		}
		if *statsJSON {
			os.Stdout.Write(snap.JSON())
			fmt.Println()
		} else {
			fmt.Print(snap.Table())
		}
		return
	}
	if *fsckMode {
		rep := harness.RunFsck(harness.FsckConfig{Seed: *chaosSeed, Repair: *fsckRepair})
		fmt.Print(rep.Summary())
		if rep.Failed() {
			os.Exit(1)
		}
		return
	}
	if *chaos && *overload {
		rep := harness.RunOverload(harness.OverloadConfig{Seed: *chaosSeed})
		fmt.Print(rep.Summary())
		if rep.Failed() {
			os.Exit(1)
		}
		return
	}
	if *chaos {
		rep := harness.RunChaos(harness.ChaosConfig{Seed: *chaosSeed, DataWrites: *chaosData})
		if *chaosVerbo {
			for _, line := range rep.Log {
				fmt.Fprintln(os.Stderr, line)
			}
		}
		fmt.Print(rep.Summary())
		if rep.Failed() {
			os.Exit(1)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	r := harness.NewRunner()
	if *quick {
		r.Scale = harness.QuickScale()
	}
	if *files > 0 {
		r.Scale.MdtestFilesPerProc = *files
	}
	if *procs > 0 {
		r.Scale.MdtestProcs = *procs
		r.Scale.FioProcs = *procs
	}
	if *clients != "" {
		r.Scale.ScaleClients = parseClients(*clients)
	}
	if *flaky > 0 {
		r.Flaky, r.FlakySeed = *flaky, *seed
	}
	if *retries > 0 {
		pol := objstore.DefaultRetryPolicy()
		pol.MaxAttempts = *retries
		r.Retry = &pol
	}
	if !*quiet {
		r.Log = func(s string) { fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), s) }
	}

	run := map[string]func() (*harness.Experiment, error){
		"fig1":             r.Fig1,
		"fig4":             r.Fig4,
		"fig5":             r.Fig5,
		"fig6a":            r.Fig6a,
		"fig6b":            r.Fig6b,
		"fig7":             r.Fig7,
		"table2":           r.Table2,
		"ablate-journal":   r.AblationJournal,
		"ablate-readahead": r.AblationReadahead,
		"ablate-entrysize": r.AblationEntrySize,
		"ablate-leasemgr":  r.AblationLeaseManager,
	}
	order := []string{"fig1", "fig4", "fig5", "fig6a", "fig6b", "fig7", "table2"}
	ablations := []string{"ablate-journal", "ablate-readahead", "ablate-entrysize", "ablate-leasemgr"}

	var wanted []string
	for _, arg := range flag.Args() {
		if arg == "all" {
			wanted = order
			break
		}
		if arg == "ablate" {
			wanted = append(wanted, ablations...)
			continue
		}
		if _, ok := run[arg]; !ok {
			fmt.Fprintf(os.Stderr, "arkbench: unknown experiment %q\n", arg)
			os.Exit(2)
		}
		wanted = append(wanted, arg)
	}

	failed := false
	for _, name := range wanted {
		exp, err := run[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "arkbench: %s: %v\n", name, err)
			failed = true
			continue
		}
		if *csv {
			fmt.Print(exp.RenderCSV())
		} else {
			fmt.Println(exp.Render())
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkBaseline guards the committed benchmark trajectory: the regenerated
// report's headline metadata rates (mdtest-easy CREATE, mdtest-hard WRITE)
// must not fall below the committed baseline. Both runs are deterministic on
// the virtual clock, so an equal-seed comparison is exact — any drop is a
// real regression on the commit path, not measurement noise.
func checkBaseline(rep *harness.BenchReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base harness.BenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Schema != rep.Schema {
		return fmt.Errorf("baseline %s: schema %q, want %q", path, base.Schema, rep.Schema)
	}
	checks := []struct {
		label     string
		got, want float64
		// slack is the tolerated fraction below the baseline: zero for the
		// byte-deterministic mdtest phases; the sharded sweep points are only
		// stable to ~0.1% across invocations (see BenchReport), so their gate
		// allows 2% before calling it a regression.
		slack float64
	}{
		{"mdtest-easy CREATE", phaseRate(rep.MdtestEasy, "CREATE"), phaseRate(base.MdtestEasy, "CREATE"), 0},
		{"mdtest-hard WRITE", phaseRate(rep.MdtestHard, "WRITE"), phaseRate(base.MdtestHard, "WRITE"), 0},
		{"sharded 512-client ACQUIRE", shardRate(rep.ShardedScalability, 512, true),
			shardRate(base.ShardedScalability, 512, true), 0.02},
	}
	for _, c := range checks {
		if c.want <= 0 {
			return fmt.Errorf("baseline %s: missing %s phase", path, c.label)
		}
		if c.got < c.want*(1-c.slack) {
			return fmt.Errorf("%s regressed: %.1f ops/s below committed baseline %.1f ops/s",
				c.label, c.got, c.want)
		}
	}
	// The elastic ring is pointless if it does not beat the single manager
	// where the single manager saturates: the largest sharded point must
	// clear its same-size single-manager twin.
	last := base.ShardedScalability
	if len(last) > 0 {
		nmax := 0
		for _, p := range last {
			if p.Clients > nmax {
				nmax = p.Clients
			}
		}
		single, multi := shardRate(rep.ShardedScalability, nmax, false), shardRate(rep.ShardedScalability, nmax, true)
		if single > 0 && multi <= single {
			return fmt.Errorf("sharded sweep: %d-client multi-shard rate %.1f does not beat single manager %.1f",
				nmax, multi, single)
		}
	}
	return nil
}

// shardRate finds the sharded-sweep rate for a client count; multi selects
// the multi-shard point, otherwise the single-manager twin.
func shardRate(points []harness.BenchShardPoint, clients int, multi bool) float64 {
	for _, p := range points {
		if p.Clients == clients && (p.Shards > 1) == multi {
			return p.CreatePerSec
		}
	}
	return 0
}

func phaseRate(phases []harness.BenchPhase, name string) float64 {
	for _, p := range phases {
		if p.Name == name {
			return p.OpsPerSec
		}
	}
	return 0
}

func parseClients(s string) []int {
	var cs []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "arkbench: bad -clients value %q\n", part)
			os.Exit(2)
		}
		cs = append(cs, n)
	}
	return cs
}
