package main

import "testing"

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		m    modeFlags
		ok   bool
	}{
		{"default", modeFlags{}, true},
		{"stats", modeFlags{Stats: true}, true},
		{"stats json", modeFlags{Stats: true, StatsJSON: true}, true},
		{"chaos", modeFlags{Chaos: true}, true},
		{"bench", modeFlags{BenchJSON: "out.json"}, true},
		{"chaos+stats", modeFlags{Chaos: true, Stats: true}, false},
		{"json alone", modeFlags{StatsJSON: true}, false},
		{"json+chaos", modeFlags{Chaos: true, StatsJSON: true}, false},
		{"bench+chaos", modeFlags{BenchJSON: "o.json", Chaos: true}, false},
		{"bench+stats", modeFlags{BenchJSON: "o.json", Stats: true}, false},
		{"bench+json", modeFlags{BenchJSON: "o.json", StatsJSON: true}, false},
		{"fsck", modeFlags{Fsck: true}, true},
		{"fsck repair", modeFlags{Fsck: true, FsckRepair: true}, true},
		{"repair alone", modeFlags{FsckRepair: true}, false},
		{"fsck+chaos", modeFlags{Fsck: true, Chaos: true}, false},
		{"fsck+stats", modeFlags{Fsck: true, Stats: true}, false},
		{"fsck+bench", modeFlags{Fsck: true, BenchJSON: "o.json"}, false},
		{"repair+chaos", modeFlags{FsckRepair: true, Chaos: true}, false},
	}
	for _, tc := range cases {
		err := validateFlags(tc.m)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid combination accepted", tc.name)
		}
	}
}
