// Command arkfs is the interactive ArkFS client: a shell-style CLI over a
// live deployment. It can run fully self-contained (in-memory store +
// embedded lease manager) or join a multi-process cluster (HTTP object
// store via objstored, lease manager via leasemgr, peer clients over TCP
// bridges).
//
// Usage:
//
//	arkfs [flags] <command> [args...]
//	arkfs [flags] shell          # interactive mode
//
// Commands:
//
//	format                        initialize the file system
//	mkdir <path>                  create a directory
//	ls <path>                     list a directory
//	stat <path>                   show inode details
//	put <local> <path>            copy a local file in
//	get <path> <local>            copy a file out
//	cat <path>                    print a file
//	write <path> <text>           write text to a file
//	rm <path> | rmdir <path>      remove entries
//	mv <src> <dst>                rename
//	ln -s <target> <path>         create a symlink
//	chmod <octal> <path>          change permissions
//	tree <path>                   recursive listing
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"arkfs/internal/core"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/obs/expose"
	"arkfs/internal/prt"
	"arkfs/internal/qos"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

func main() {
	var (
		storeURL = flag.String("store", "", "objstored base URL (empty: in-memory store)")
		mgrAddr  = flag.String("leasemgr", "", "lease manager address, e.g. tcp!127.0.0.1:7400 (empty: embedded)")
		mgrRing  = flag.String("leasemgrs", "", "comma-separated lease-shard ring, e.g. tcp!h:7400,tcp!h:7401 (as printed by leasemgr -shards N; overrides -leasemgr)")
		id       = flag.String("id", "cli", "client id")
		tenant   = flag.String("tenant", "", "tenant id stamped on every op's spans and accounting (empty: tenant-<id>)")
		serve    = flag.String("serve", "", "TCP bind for serving forwarded ops from peer clients")
		uid      = flag.Uint("uid", 1000, "credential uid")
		gid      = flag.Uint("gid", 1000, "credential gid")
		retries  = flag.Int("store-retries", 4, "retry transient object-store failures up to N attempts (0: fail fast)")
		backoff  = flag.Duration("retry-backoff", 2*time.Millisecond, "initial retry backoff, doubling per attempt")

		qosRate  = flag.Float64("qos-rate", 0, "per-tenant admission rate for forwarded ops this client serves as leader, ops/sec (0: no admission control)")
		qosBurst = flag.Float64("qos-burst", 8, "per-tenant admission burst depth (with -qos-rate)")
		opBudget = flag.Int("op-budget", 0, "shared retry budget per operation (0: default, negative: unlimited)")
		maxInbox = flag.Int("max-inbox", 0, "bound the leader-side RPC inbox; excess requests get typed EAGAIN (0: unbounded)")
		shedWait = flag.Duration("shed-wait", 0, "shed queued requests older than this at pickup (0: never)")
		breaker  = flag.Bool("breaker", false, "mount a circuit breaker under the object-store retry layer")
		brownout = flag.Bool("brownout", false, "shed expensive forwarded ops with typed EAGAIN when the journal pipeline backs up")

		debugAddr = flag.String("debug-addr", "", "serve /metrics, /stats.json, /traces, /healthz and pprof on this address (empty: off)")
		slowOp    = flag.Duration("slow-op", 0, "log operations slower than this with their trace IDs (0: off; needs -debug-addr)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	env := sim.NewRealEnv()
	defer env.Shutdown()
	net := rpc.NewNetwork(env, sim.NetModel{})

	var store objstore.Store
	if *storeURL != "" {
		store = objstore.NewHTTPStore(*storeURL)
	} else {
		store = objstore.NewMemStore()
	}
	tr := prt.New(store, 0)

	// Lease routing: a static ring of remote shards (-leasemgrs), one remote
	// manager (-leasemgr), or an embedded manager. The ring member strings
	// must match the ones leasemgr advertises byte-for-byte — rendezvous
	// routing hashes the address bytes, so any difference splits ownership.
	var router lease.Router
	leaseAddr := rpc.Addr(*mgrAddr)
	if *mgrRing != "" {
		var members []rpc.Addr
		for _, part := range strings.Split(*mgrRing, ",") {
			if part = strings.TrimSpace(part); part != "" {
				members = append(members, rpc.Addr(part))
			}
		}
		if len(members) == 0 {
			fmt.Fprintln(os.Stderr, "arkfs: -leasemgrs needs at least one member")
			os.Exit(2)
		}
		router = lease.NewRouter(lease.NewRing(members...))
		leaseAddr = members[0] // fallback only; the router decides routes
	} else if leaseAddr == "" {
		mgr := lease.NewManager(net, lease.Options{})
		defer mgr.Close()
		leaseAddr = mgr.Addr()
	}

	opts := core.Options{
		ID:          *id,
		Tenant:      *tenant,
		Cred:        types.Cred{Uid: uint32(*uid), Gid: uint32(*gid)},
		LeaseMgr:    leaseAddr,
		LeaseRouter: router,
		OpBudget:    *opBudget,
		ServerLimits: rpc.ServerLimits{
			MaxInbox: *maxInbox,
			ShedWait: *shedWait,
		},
	}
	if *qosRate > 0 {
		opts.QoS = qos.NewLimiter(qos.Limits{Rate: *qosRate, Burst: *qosBurst})
	}
	if *brownout {
		opts.Brownout = &qos.BrownoutLadder{}
	}
	if *breaker {
		opts.Breaker = &qos.BreakerConfig{}
	}
	if *retries > 1 {
		pol := objstore.DefaultRetryPolicy()
		pol.MaxAttempts = *retries
		pol.InitialBackoff = *backoff
		opts.Retry = &pol
	}
	if *slowOp > 0 && *debugAddr == "" {
		fmt.Fprintln(os.Stderr, "arkfs: -slow-op needs -debug-addr (tracing is off without it)")
		os.Exit(2)
	}
	var reg *obs.Registry
	if *debugAddr != "" {
		// The debug server needs an instrumented client: attaching the
		// registry turns on metrics and the trace ring.
		reg = obs.NewRegistry()
		opts.Obs = reg
		net.SetObs(reg)
	}
	var bridge *rpc.TCPServer
	if *serve != "" {
		// Bind first so the advertised address is known before New.
		opts.Advertise = "" // set after bridging below
	}
	client := core.New(net, tr, opts)
	defer client.Close()
	if *debugAddr != "" {
		dbg, err := expose.Serve(*debugAddr, expose.Options{
			Reg:     reg,
			Tracers: []*obs.Tracer{client.Tracer()},
		})
		if err != nil {
			log.Fatalf("arkfs: debug server: %v", err)
		}
		defer dbg.Close()
		if *slowOp > 0 {
			expose.AttachSlowOpLog(client.Tracer(),
				slog.New(slog.NewTextHandler(os.Stderr, nil)), *slowOp)
		}
		fmt.Fprintf(os.Stderr, "arkfs: debug endpoints on http://%s/\n", dbg.Addr())
	}
	if *serve != "" {
		var err error
		bridge, err = net.Bridge(*serve, client.ServiceName())
		if err != nil {
			log.Fatalf("arkfs: bridge: %v", err)
		}
		defer bridge.Close()
		fmt.Fprintf(os.Stderr, "arkfs: serving peers on tcp!%s\n", bridge.Addr())
	}

	args := flag.Args()
	if args[0] == "shell" {
		runShell(client, tr)
		return
	}
	if err := runCommand(client, tr, args); err != nil {
		fmt.Fprintf(os.Stderr, "arkfs: %v\n", err)
		os.Exit(1)
	}
}

func runShell(c *core.Client, tr *prt.Translator) {
	fmt.Println("arkfs shell — type 'help' or 'quit'")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("arkfs> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if line == "help" {
			fmt.Println("commands: format mkdir ls stat put get cat write rm rmdir mv ln chmod tree fsync quit")
			continue
		}
		if err := runCommand(c, tr, strings.Fields(line)); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
}

func runCommand(c *core.Client, tr *prt.Translator, args []string) error {
	// The CLI runs one command at a time; interruption is process-level
	// (SIGINT), so operations run under the background context.
	ctx := context.Background()
	cmd, rest := args[0], args[1:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("%s: need %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "format":
		return core.Format(tr)
	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return c.Mkdir(ctx, rest[0], 0755)
	case "ls":
		if err := need(1); err != nil {
			return err
		}
		ents, err := c.Readdir(ctx, rest[0])
		if err != nil {
			return err
		}
		for _, de := range ents {
			fmt.Printf("%-8s %s\n", de.Type, de.Name)
		}
		return nil
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		st, err := c.Stat(ctx, rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("ino:   %s\ntype:  %s\nmode:  %04o\nuid:   %d\ngid:   %d\nsize:  %d\nnlink: %d\nacl:   %s\n",
			st.Ino, st.Type, st.Mode, st.Uid, st.Gid, st.Size, st.Nlink, st.ACL)
		return nil
	case "put":
		if err := need(2); err != nil {
			return err
		}
		data, err := os.ReadFile(rest[0])
		if err != nil {
			return err
		}
		f, err := c.Create(ctx, rest[1], 0644)
		if err != nil {
			return err
		}
		if _, err := f.Write(data); err != nil {
			return err
		}
		if err := f.Fsync(ctx); err != nil {
			return err
		}
		return f.Close()
	case "get":
		if err := need(2); err != nil {
			return err
		}
		f, err := c.Open(ctx, rest[0], types.ORdonly, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		out, err := os.Create(rest[1])
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, f)
		return err
	case "cat":
		if err := need(1); err != nil {
			return err
		}
		f, err := c.Open(ctx, rest[0], types.ORdonly, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = io.Copy(os.Stdout, f)
		return err
	case "write":
		if err := need(2); err != nil {
			return err
		}
		f, err := c.Create(ctx, rest[0], 0644)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte(strings.Join(rest[1:], " ") + "\n")); err != nil {
			return err
		}
		if err := f.Fsync(ctx); err != nil {
			return err
		}
		return f.Close()
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return c.Unlink(ctx, rest[0])
	case "rmdir":
		if err := need(1); err != nil {
			return err
		}
		return c.Rmdir(ctx, rest[0])
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return c.Rename(ctx, rest[0], rest[1])
	case "ln":
		if len(rest) == 3 && rest[0] == "-s" {
			return c.Symlink(ctx, rest[1], rest[2])
		}
		return fmt.Errorf("ln: only 'ln -s <target> <path>' is supported")
	case "chmod":
		if err := need(2); err != nil {
			return err
		}
		mode, err := strconv.ParseUint(rest[0], 8, 16)
		if err != nil {
			return fmt.Errorf("chmod: bad mode %q", rest[0])
		}
		return c.Chmod(ctx, rest[1], types.Mode(mode))
	case "fsync":
		return c.FlushAll(ctx)
	case "tree":
		if err := need(1); err != nil {
			return err
		}
		return tree(c, rest[0], "")
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func tree(c *core.Client, path, indent string) error {
	ents, err := c.Readdir(context.Background(), path)
	if err != nil {
		return err
	}
	for _, de := range ents {
		fmt.Printf("%s%s\n", indent, de.Name)
		if de.Type == types.TypeDir {
			sub := path + "/" + de.Name
			if path == "/" {
				sub = "/" + de.Name
			}
			if err := tree(c, sub, indent+"  "); err != nil {
				return err
			}
		}
	}
	return nil
}
