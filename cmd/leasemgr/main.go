// Command leasemgr runs the ArkFS lease manager as a standalone process,
// bridged onto a TCP port. ArkFS clients in other processes point their
// -leasemgr flag at it ("tcp!host:port").
//
// Usage:
//
//	leasemgr [-listen :7400] [-period 5s] [-restarted] [-debug-addr :7500] [-slow-op 50ms]
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"

	"arkfs/internal/lease"
	"arkfs/internal/obs"
	"arkfs/internal/obs/expose"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
)

func main() {
	listen := flag.String("listen", ":7400", "TCP listen address")
	period := flag.Duration("period", lease.DefaultPeriod, "lease period")
	restarted := flag.Bool("restarted", false, "start in the post-crash quiesce state")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /stats.json, /traces, /healthz and pprof on this address (empty: off)")
	slowOp := flag.Duration("slow-op", 0, "log lease operations slower than this (0: off; needs -debug-addr)")
	flag.Parse()

	env := sim.NewRealEnv()
	net := rpc.NewNetwork(env, sim.NetModel{})
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		net.SetObs(reg)
	}
	mgr := lease.NewManager(net, lease.Options{
		Period:    *period,
		Workers:   8,
		Restarted: *restarted,
		Obs:       reg,
	})
	if *debugAddr != "" {
		dbg, err := expose.Serve(*debugAddr, expose.Options{
			Reg:     reg,
			Tracers: []*obs.Tracer{mgr.Tracer()},
		})
		if err != nil {
			log.Fatalf("leasemgr: debug server: %v", err)
		}
		defer dbg.Close()
		if *slowOp > 0 {
			expose.AttachSlowOpLog(mgr.Tracer(),
				slog.New(slog.NewTextHandler(os.Stderr, nil)), *slowOp)
		}
		fmt.Printf("leasemgr: debug endpoints on http://%s/\n", dbg.Addr())
	} else if *slowOp > 0 {
		fmt.Fprintln(os.Stderr, "leasemgr: -slow-op needs -debug-addr (tracing is off without it)")
		os.Exit(2)
	}
	srv, err := net.Bridge(*listen, mgr.Addr())
	if err != nil {
		log.Fatalf("leasemgr: %v", err)
	}
	fmt.Printf("leasemgr: serving leases on %s (period %v)\n", srv.Addr(), *period)
	fmt.Printf("leasemgr: clients connect with -leasemgr 'tcp!%s'\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
	mgr.Close()
	env.Shutdown()
}
