// Command leasemgr runs the ArkFS lease manager as a standalone process,
// bridged onto a TCP port. ArkFS clients in other processes point their
// -leasemgr flag at it ("tcp!host:port").
//
// With -shards N it runs an N-member static lease ring instead: shard i
// listens on -listen's port + i, and every shard shares the same epoch-1
// ring over the advertised "tcp!host:port" members. Clients join with the
// printed -leasemgrs list; routing is rendezvous hashing over the member
// strings, so client and shard agree on ownership byte-for-byte.
//
// Usage:
//
//	leasemgr [-listen :7400] [-shards 1] [-period 5s] [-restarted] [-debug-addr :7500] [-slow-op 50ms] [-qos-rate 200] [-max-inbox 256]
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	stdnet "net"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"arkfs/internal/lease"
	"arkfs/internal/obs"
	"arkfs/internal/obs/expose"
	"arkfs/internal/qos"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
)

func main() {
	listen := flag.String("listen", ":7400", "TCP listen address (with -shards N, shard i listens on port+i)")
	shards := flag.Int("shards", 1, "run an N-member static lease ring in this process")
	period := flag.Duration("period", lease.DefaultPeriod, "lease period")
	restarted := flag.Bool("restarted", false, "start in the post-crash quiesce state")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /stats.json, /traces, /healthz and pprof on this address (empty: off)")
	slowOp := flag.Duration("slow-op", 0, "log lease operations slower than this (0: off; needs -debug-addr)")
	qosRate := flag.Float64("qos-rate", 0, "per-tenant lease-acquire admission rate, ops/sec; refusals answer typed EAGAIN with a retry hint (0: no admission control)")
	qosBurst := flag.Float64("qos-burst", 8, "per-tenant admission burst depth (with -qos-rate)")
	maxInbox := flag.Int("max-inbox", 0, "bound each shard's RPC inbox; excess requests get typed EAGAIN (0: unbounded)")
	shedWait := flag.Duration("shed-wait", 0, "shed queued requests older than this at pickup (0: never)")
	flag.Parse()
	if *shards < 1 {
		log.Fatalf("leasemgr: -shards must be >= 1, got %d", *shards)
	}

	env := sim.NewRealEnv()
	net := rpc.NewNetwork(env, sim.NetModel{})
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		net.SetObs(reg)
	}

	// Bind addresses and advertised ring members. A shard cannot listen at a
	// tcp! address itself (the bridge would dial it in a loop), so each one
	// listens under a local name and advertises the bridged endpoint.
	binds := make([]string, *shards)
	members := make([]rpc.Addr, *shards)
	if *shards == 1 {
		binds[0] = *listen
	} else {
		host, portStr, err := stdnet.SplitHostPort(*listen)
		if err != nil {
			log.Fatalf("leasemgr: -shards needs -listen host:port: %v", err)
		}
		port, err := strconv.Atoi(portStr)
		if err != nil {
			log.Fatalf("leasemgr: -listen port %q: %v", portStr, err)
		}
		for i := range binds {
			binds[i] = stdnet.JoinHostPort(host, strconv.Itoa(port+i))
			members[i] = rpc.TCPAddr(binds[i])
		}
	}
	var ring lease.Ring
	if *shards > 1 {
		ring = lease.NewRing(members...)
	}

	mgrs := make([]*lease.Manager, *shards)
	srvs := make([]*rpc.TCPServer, *shards)
	var tracers []*obs.Tracer
	for i := range mgrs {
		opts := lease.Options{
			Period:    *period,
			Workers:   8,
			Restarted: *restarted,
			Obs:       reg,
			Limits:    rpc.ServerLimits{MaxInbox: *maxInbox, ShedWait: *shedWait},
		}
		// Each shard owns a disjoint slice of the namespace, so per-shard
		// limiters still give every tenant one global rate per path.
		if *qosRate > 0 {
			opts.QoS = qos.NewLimiter(qos.Limits{Rate: *qosRate, Burst: *qosBurst})
		}
		if *shards > 1 {
			opts.Addr = rpc.Addr(fmt.Sprintf("shard%d", i))
			opts.Advertise = members[i]
			opts.Ring = ring
		}
		mgrs[i] = lease.NewManager(net, opts)
		srv, err := net.Bridge(binds[i], mgrs[i].Addr())
		if err != nil {
			log.Fatalf("leasemgr: shard %d: %v", i, err)
		}
		srvs[i] = srv
		if t := mgrs[i].Tracer(); t != nil {
			tracers = append(tracers, t)
		}
	}

	if *debugAddr != "" {
		dbg, err := expose.Serve(*debugAddr, expose.Options{
			Reg:     reg,
			Tracers: tracers,
		})
		if err != nil {
			log.Fatalf("leasemgr: debug server: %v", err)
		}
		defer dbg.Close()
		if *slowOp > 0 {
			lg := slog.New(slog.NewTextHandler(os.Stderr, nil))
			for _, t := range tracers {
				expose.AttachSlowOpLog(t, lg, *slowOp)
			}
		}
		fmt.Printf("leasemgr: debug endpoints on http://%s/\n", dbg.Addr())
	} else if *slowOp > 0 {
		fmt.Fprintln(os.Stderr, "leasemgr: -slow-op needs -debug-addr (tracing is off without it)")
		os.Exit(2)
	}

	if *shards == 1 {
		fmt.Printf("leasemgr: serving leases on %s (period %v)\n", srvs[0].Addr(), *period)
		fmt.Printf("leasemgr: clients connect with -leasemgr 'tcp!%s'\n", srvs[0].Addr())
	} else {
		parts := make([]string, len(members))
		for i, m := range members {
			parts[i] = string(m)
		}
		fmt.Printf("leasemgr: serving a %d-shard lease ring (epoch %d, period %v)\n",
			*shards, ring.Epoch, *period)
		fmt.Printf("leasemgr: clients connect with -leasemgrs '%s'\n", strings.Join(parts, ","))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	for i := range mgrs {
		srvs[i].Close()
		mgrs[i].Close()
	}
	env.Shutdown()
}
