// Command leasemgr runs the ArkFS lease manager as a standalone process,
// bridged onto a TCP port. ArkFS clients in other processes point their
// -leasemgr flag at it ("tcp!host:port").
//
// Usage:
//
//	leasemgr [-listen :7400] [-period 5s] [-restarted]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"arkfs/internal/lease"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
)

func main() {
	listen := flag.String("listen", ":7400", "TCP listen address")
	period := flag.Duration("period", lease.DefaultPeriod, "lease period")
	restarted := flag.Bool("restarted", false, "start in the post-crash quiesce state")
	flag.Parse()

	env := sim.NewRealEnv()
	net := rpc.NewNetwork(env, sim.NetModel{})
	mgr := lease.NewManager(net, lease.Options{
		Period:    *period,
		Workers:   8,
		Restarted: *restarted,
	})
	srv, err := net.Bridge(*listen, mgr.Addr())
	if err != nil {
		log.Fatalf("leasemgr: %v", err)
	}
	fmt.Printf("leasemgr: serving leases on %s (period %v)\n", srv.Addr(), *period)
	fmt.Printf("leasemgr: clients connect with -leasemgr 'tcp!%s'\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
	mgr.Close()
	env.Shutdown()
}
