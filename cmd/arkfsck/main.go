// Command arkfsck checks the consistency of an ArkFS object-store image:
// namespace reachability, dangling dentries, orphan inodes/chunks, chunk
// extents, and pending or torn journal records.
//
// Usage:
//
//	arkfsck -store http://localhost:9000
package main

import (
	"flag"
	"fmt"
	"os"

	"arkfs/internal/fsck"
	"arkfs/internal/objstore"
)

func main() {
	storeURL := flag.String("store", "", "objstored base URL (required)")
	flag.Parse()
	if *storeURL == "" {
		fmt.Fprintln(os.Stderr, "arkfsck: -store is required (an objstored URL)")
		os.Exit(2)
	}
	store := objstore.NewHTTPStore(*storeURL)
	rep, err := fsck.Check(store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arkfsck: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("scanned: %d dirs, %d files, %d symlinks, %d chunks\n",
		rep.Dirs, rep.Files, rep.Symlinks, rep.Chunks)
	if rep.PendingJournalRecords > 0 {
		fmt.Printf("note: %d journal record(s) pending recovery (unclean shutdown)\n",
			rep.PendingJournalRecords)
	}
	if rep.Clean() {
		fmt.Println("clean: no inconsistencies found")
		return
	}
	fmt.Printf("%d problem(s):\n", len(rep.Problems))
	for _, p := range rep.Problems {
		fmt.Printf("  %s\n", p)
	}
	os.Exit(1)
}
