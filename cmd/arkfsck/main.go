// Command arkfsck checks the consistency of an ArkFS object-store image:
// namespace reachability, dangling dentries, orphan inodes/chunks, chunk
// extents, CRC32C digests on every persisted record, and pending or torn
// journal records.
//
// Usage:
//
//	arkfsck -store http://localhost:9000            check only
//	arkfsck -store http://localhost:9000 -scrub     plan repairs (read-only)
//	arkfsck -store http://localhost:9000 -repair    apply repairs
//
// Repair truncates corrupt journals at the first bad record, restores
// corrupt inodes from journaled copies, rebuilds corrupt dentry blocks by
// journal replay, quarantines unrecoverable objects under the quarantine/
// prefix, and collects orphans (only once no journal records are pending).
package main

import (
	"flag"
	"fmt"
	"os"

	"arkfs/internal/fsck"
	"arkfs/internal/objstore"
	"arkfs/internal/qos"
	"arkfs/internal/sim"
)

func main() {
	storeURL := flag.String("store", "", "objstored base URL (required)")
	scrub := flag.Bool("scrub", false, "plan repairs without modifying the store")
	repair := flag.Bool("repair", false, "repair the image (implies -scrub)")
	tenant := flag.String("tenant", "fsck", "tenant stamped on every store request, so a QoS-enabled gateway accounts and rate-limits the scan under its own bucket")
	breaker := flag.Bool("breaker", false, "mount a circuit breaker on the store: a dying gateway trips fast instead of timing out every scan read")
	flag.Parse()
	if *storeURL == "" {
		fmt.Fprintln(os.Stderr, "arkfsck: -store is required (an objstored URL)")
		os.Exit(2)
	}
	hs := objstore.NewHTTPStore(*storeURL)
	hs.SetTenant(*tenant)
	var store objstore.Store = hs
	if *breaker {
		env := sim.NewRealEnv()
		defer env.Shutdown()
		store = objstore.NewBreakerStore(env, store, qos.BreakerConfig{})
	}

	if !*scrub && !*repair {
		rep, err := fsck.Check(store)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arkfsck: %v\n", err)
			os.Exit(2)
		}
		printReport(rep)
		if !rep.Clean() {
			os.Exit(1)
		}
		return
	}

	srep, err := fsck.Scrub(store, *repair)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arkfsck: scrub: %v\n", err)
		os.Exit(2)
	}
	fmt.Println("before repair:")
	printReport(srep.Pre)
	verb := "applied"
	if srep.Planned {
		verb = "planned"
	}
	fmt.Printf("%d action(s) %s:\n", len(srep.Actions), verb)
	for _, a := range srep.Actions {
		fmt.Printf("  %s\n", a)
	}
	if srep.GCSkipped {
		fmt.Println("note: orphan collection withheld (journal records pending recovery)")
	}
	if srep.Post != nil {
		fmt.Println("after repair:")
		printReport(srep.Post)
		if !srep.Post.Clean() {
			os.Exit(1)
		}
	} else if !srep.Pre.Clean() {
		os.Exit(1)
	}
}

func printReport(rep *fsck.Report) {
	fmt.Printf("scanned: %d dirs, %d files, %d symlinks, %d chunks\n",
		rep.Dirs, rep.Files, rep.Symlinks, rep.Chunks)
	if rep.PendingJournalRecords > 0 {
		fmt.Printf("note: %d journal record(s) pending recovery (unclean shutdown)\n",
			rep.PendingJournalRecords)
	}
	if rep.Quarantined > 0 {
		fmt.Printf("note: %d object(s) in quarantine\n", rep.Quarantined)
	}
	if rep.Clean() {
		fmt.Println("clean: no inconsistencies found")
		return
	}
	fmt.Printf("%d problem(s):\n", len(rep.Problems))
	for _, p := range rep.Problems {
		fmt.Printf("  %s\n", p)
	}
}
