// Resthttp: ArkFS over a real REST object store — the PRT module's
// "register your REST API" story end-to-end. The example starts an HTTP
// object gateway (the same one cmd/objstored serves), points an ArkFS
// client at it through HTTPStore, and runs file-system operations whose
// every byte travels through real HTTP requests.
//
// Run with:
//
//	go run ./examples/resthttp
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http/httptest"

	"arkfs/internal/core"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

func main() {
	// 1. A real HTTP object store (in-process listener, real sockets).
	backing := objstore.NewMemStore()
	srv := httptest.NewServer(objstore.NewGateway(backing))
	defer srv.Close()
	fmt.Printf("object gateway: %s\n", srv.URL)

	// 2. ArkFS mounts it through the REST client — the PRT module neither
	// knows nor cares that the backend is HTTP.
	store := objstore.NewHTTPStore(srv.URL)
	tr := prt.New(store, 256<<10) // smaller chunks: more REST traffic to watch
	if err := core.Format(tr); err != nil {
		log.Fatal(err)
	}

	env := sim.NewRealEnv()
	defer env.Shutdown()
	net := rpc.NewNetwork(env, sim.NetModel{})
	mgr := lease.NewManager(net, lease.Options{})
	defer mgr.Close()
	client := core.New(net, tr, core.Options{ID: "rest", Cred: types.Cred{Uid: 1000, Gid: 1000}})
	defer client.Close()
	ctx := context.Background()

	// 3. Normal POSIX-style work; all storage I/O becomes REST calls.
	must(client.Mkdir(ctx, "/data", 0755))
	f, err := client.Create(ctx, "/data/blob.bin", 0644)
	must(err)
	payload := make([]byte, 700<<10) // 700 KiB spans three 256 KiB chunks
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	_, err = f.Write(payload)
	must(err)
	must(f.Sync())
	must(f.Close())
	must(client.FlushAll(ctx))

	// 4. Inspect the bucket through the REST API directly: the i:/e:/d:
	// key scheme of the PRT module is visible on the wire.
	keys, err := store.List("")
	must(err)
	var inodes, dentries, data, journal int
	for _, k := range keys {
		switch k[:2] {
		case "i:":
			inodes++
		case "e:":
			dentries++
		case "d:":
			data++
		case "j:":
			journal++
		}
	}
	fmt.Printf("bucket after flush: %d inode, %d dentry, %d data, %d journal objects\n",
		inodes, dentries, data, journal)

	// 5. Read back through ArkFS (REST GETs under the hood).
	r, err := client.Open(ctx, "/data/blob.bin", types.ORdonly, 0)
	must(err)
	back, err := io.ReadAll(r)
	must(err)
	must(r.Close())
	fmt.Printf("read back %d KiB, intact=%v\n", len(back)>>10, string(back) == string(payload))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
