// Shareddir: the client-driven metadata service under contention — the
// scenario of the paper's Figure 3. Several clients work in the same
// directory: the first to touch it becomes the directory leader, the rest
// forward their operations to it over RPC; when the leader releases its
// lease, leadership migrates. A cross-directory rename demonstrates the
// two-phase commit between two leaders.
//
// Run with:
//
//	go run ./examples/shareddir
package main

import (
	"context"
	"fmt"
	"log"

	"arkfs/internal/core"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

func main() {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	store := objstore.NewMemStore()
	tr := prt.New(store, 0)
	must(core.Format(tr))
	net := rpc.NewNetwork(env, sim.NetModel{})
	mgr := lease.NewManager(net, lease.Options{})
	defer mgr.Close()

	// Three clients, as in Figure 3: C1 will lead / and /home, C2 will lead
	// /home/doc.
	c1 := core.New(net, tr, core.Options{ID: "C1", Cred: types.Cred{Uid: 1, Gid: 1}})
	defer c1.Close()
	c2 := core.New(net, tr, core.Options{ID: "C2", Cred: types.Cred{Uid: 2, Gid: 2}})
	defer c2.Close()
	c3 := core.New(net, tr, core.Options{ID: "C3", Cred: types.Cred{Uid: 3, Gid: 3}})
	defer c3.Close()
	ctx := context.Background()

	// C1 builds the hierarchy — it becomes the leader of / and /home.
	must(c1.Mkdir(ctx, "/home", 0777))
	f, err := c1.Create(ctx, "/home/foo.txt", 0666)
	must(err)
	_, _ = f.Write([]byte("foo"))
	must(f.Close())

	// C2 creates /home/doc and works inside it — C2 is its leader, while
	// its create of the "doc" entry itself was forwarded to C1 (leader of
	// /home), exactly the redirection of Figure 3(b).
	must(c2.Mkdir(ctx, "/home/doc", 0777))
	g, err := c2.Create(ctx, "/home/doc/bar.txt", 0666)
	must(err)
	_, _ = g.Write([]byte("bar"))
	must(g.Close())

	fmt.Println("after setup:")
	report(c1, "C1")
	report(c2, "C2")

	// C3 reads through both leaders: lookups for /home go to C1, lookups
	// for /home/doc go to C2.
	st, err := c3.Stat(ctx, "/home/doc/bar.txt")
	must(err)
	fmt.Printf("C3 stats /home/doc/bar.txt through two leaders: size=%d\n", st.Size)

	// Cross-directory rename: /home (led by C1) -> /home/doc (led by C2).
	// C1 coordinates a two-phase commit with C2's journal.
	must(c3.Rename(ctx, "/home/foo.txt", "/home/doc/foo-moved.txt"))
	ents, err := c3.Readdir(ctx, "/home/doc")
	must(err)
	fmt.Print("after 2PC rename, /home/doc:")
	for _, de := range ents {
		fmt.Printf(" %s", de.Name)
	}
	fmt.Println()

	// Leadership hand-off: C1 releases /home; C3 takes over on next access.
	res, err := c1.Stat(ctx, "/home")
	must(err)
	must(c1.ReleaseDir(res.Ino))
	_, err = c3.Readdir(ctx, "/home") // C3 acquires the lease and loads the metatable
	must(err)
	fmt.Println("after C1 released /home:")
	report(c3, "C3")

	mstats := mgr.Stats()
	fmt.Printf("lease manager: %d acquires, %d redirects, %d extensions\n",
		mstats.Acquires.Load(), mstats.Redirects.Load(), mstats.Extensions.Load())
}

func report(c *core.Client, name string) {
	s := c.StatCounters()
	fmt.Printf("  %s: local metadata ops=%d, forwarded ops=%d, lease acquires=%d\n",
		name, s.LocalMetaOps.Load(), s.RemoteMetaOps.Load(), s.LeaseAcquires.Load())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
