// Archive: the paper's §IV-D campaign-storage scenario as a runnable
// program — an administrator daemon moves a tar'd dataset from the burst
// buffer into ArkFS, extracts and categorizes it, then retrieves it back.
// Runs on the virtual clock, so the reported times are simulated cluster
// time, not wall time.
//
// Run with:
//
//	go run ./examples/archive
package main

import (
	"context"
	"fmt"
	"log"

	"arkfs/internal/fsapi"
	"arkfs/internal/harness"
	"arkfs/internal/objstore"
	"arkfs/internal/sim"
	"arkfs/internal/workload"
)

func main() {
	// A synthetic MS-COCO-shaped dataset: 2000 images, 2-96 KiB each.
	dcfg := workload.DatasetConfig{
		Files: 2000, MinSize: 2 << 10, MaxSize: 96 << 10, Categories: 8, Seed: 7,
	}
	dataset := workload.NewDataset(dcfg)
	tarImage, err := workload.BuildTarImage(dataset, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d files, %.1f MiB (tar image %.1f MiB)\n",
		len(dataset.Files), float64(dataset.Total)/(1<<20), float64(len(tarImage))/(1<<20))

	env := sim.NewVirtEnv()
	env.Run(func() {
		// ArkFS on a RADOS-profile cluster that retains payloads (the tar
		// stream is parsed back during extraction).
		prof := objstore.RADOSProfile()
		prof.SizeOnlyPrefix = ""
		dep, err := harness.BuildArkFS(env, harness.DefaultCalibration(), prof, 1,
			harness.ArkFSOptions{PermCache: true})
		if err != nil {
			log.Fatal(err)
		}
		defer dep.Close()
		mount := dep.Mounts[0]

		// The burst buffer / EBS volume the dataset moves through (1 GB/s).
		ext := workload.NewExternalStore(env, 1<<30)
		cfg := workload.ArchiveConfig{Root: "/campaign", External: ext}

		arch, err := workload.Archive(env, mount, dataset, tarImage, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("archiving:   %d files, %.1f MiB in %v (simulated)\n",
			arch.Files, float64(arch.Bytes)/(1<<20), arch.Elapsed)

		// Show the categorized layout.
		ents, err := mount.Readdir(context.Background(), "/campaign")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("categories:  %d directories under /campaign\n", len(ents))
		sub, err := mount.Readdir(context.Background(), "/campaign/"+ents[0].Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s holds %d images\n", ents[0].Name, len(sub))

		unarch, err := workload.Unarchive(env, mount, dataset, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("unarchiving: %d files, %.1f MiB in %v (simulated)\n",
			unarch.Files, float64(unarch.Bytes)/(1<<20), unarch.Elapsed)

		_ = fsapi.Create // keep the public-API import explicit
	})
}
