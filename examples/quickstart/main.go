// Quickstart: a self-contained ArkFS deployment in one process — in-memory
// object store, embedded lease manager, one client — exercising the basic
// near-POSIX API: mkdir, create/write/read, stat, readdir, rename, ACLs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"

	"arkfs/internal/core"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

func main() {
	// 1. Substrate: environment, object store, PRT translator.
	env := sim.NewRealEnv()
	defer env.Shutdown()
	store := objstore.NewMemStore()
	tr := prt.New(store, 0) // default 2 MiB chunks

	// 2. Format the file system (writes the root inode).
	if err := core.Format(tr); err != nil {
		log.Fatal(err)
	}

	// 3. Control plane: RPC fabric + lease manager.
	net := rpc.NewNetwork(env, sim.NetModel{})
	mgr := lease.NewManager(net, lease.Options{})
	defer mgr.Close()

	// 4. An ArkFS client (one "mount").
	client := core.New(net, tr, core.Options{
		ID:   "quickstart",
		Cred: types.Cred{Uid: 1000, Gid: 1000},
	})
	defer client.Close()
	ctx := context.Background()

	// 5. Build a small tree.
	must(client.Mkdir(ctx, "/projects", 0755))
	must(client.Mkdir(ctx, "/projects/demo", 0755))

	f, err := client.Create(ctx, "/projects/demo/hello.txt", 0644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write([]byte("hello from ArkFS!\n")); err != nil {
		log.Fatal(err)
	}
	must(f.Sync())
	must(f.Close())

	// 6. Read it back.
	r, err := client.Open(ctx, "/projects/demo/hello.txt", types.ORdonly, 0)
	if err != nil {
		log.Fatal(err)
	}
	content, err := io.ReadAll(r)
	if err != nil {
		log.Fatal(err)
	}
	must(r.Close())
	fmt.Printf("content: %s", content)

	// 7. Metadata operations.
	st, err := client.Stat(ctx, "/projects/demo/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stat: ino=%s size=%d mode=%04o uid=%d\n", st.Ino.Short(), st.Size, st.Mode, st.Uid)

	must(client.Rename(ctx, "/projects/demo/hello.txt", "/projects/demo/greeting.txt"))
	ents, err := client.Readdir(ctx, "/projects/demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("demo dir:")
	for _, de := range ents {
		fmt.Printf(" %s", de.Name)
	}
	fmt.Println()

	// 8. Access control: a named user gets read access through an ACL.
	must(client.Chmod(ctx, "/projects/demo/greeting.txt", 0600))
	must(client.SetACL(ctx, "/projects/demo/greeting.txt", types.ACL{
		{Tag: types.TagUserObj, Perms: types.MayRead | types.MayWrite},
		{Tag: types.TagUser, ID: 2000, Perms: types.MayRead},
		{Tag: types.TagMask, Perms: types.MayRead},
	}))
	st, _ = client.Stat(ctx, "/projects/demo/greeting.txt")
	fmt.Printf("acl: %s\n", st.ACL)

	// 9. Everything durable: flush journals and count the stored objects.
	must(client.FlushAll(ctx))
	keys, _ := store.List("")
	fmt.Printf("object store now holds %d objects (i:/e:/d: keys)\n", len(keys))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
