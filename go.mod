module arkfs

go 1.22
